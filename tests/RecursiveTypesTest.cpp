//===- tests/RecursiveTypesTest.cpp - Recursive-type analysis -------------===//

#include "TestUtil.h"
#include "analysis/RecursiveTypes.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::analysis;
using namespace algoprof::testutil;

namespace {

int32_t classId(const prof::CompiledProgram &CP, const std::string &Name) {
  int32_t Id = CP.Mod->findClassId(Name);
  EXPECT_GE(Id, 0) << Name;
  return Id;
}

int32_t fieldId(const prof::CompiledProgram &CP, const std::string &Cls,
                const std::string &Field) {
  for (const bc::FieldInfo &F : CP.Mod->Fields)
    if (F.Name == Field &&
        CP.Mod->Classes[static_cast<size_t>(F.ClassId)].Name == Cls)
      return F.Id;
  ADD_FAILURE() << Cls << "." << Field << " not found";
  return -1;
}

TEST(RecursiveTypes, LinkedListNodeIsRecursive) {
  auto CP = compile(R"(
    class Node {
      Node prev;
      Node next;
      int value;
    }
    class List { Node head; Node tail; }
    class Main { static void main() { } }
  )");
  const RecursiveTypes &RT = CP->Prep.RecTypes;
  EXPECT_TRUE(RT.isRecursiveClass(classId(*CP, "Node")));
  EXPECT_FALSE(RT.isRecursiveClass(classId(*CP, "List")));
  EXPECT_TRUE(RT.isLinkField(fieldId(*CP, "Node", "prev")));
  EXPECT_TRUE(RT.isLinkField(fieldId(*CP, "Node", "next")));
  EXPECT_FALSE(RT.isLinkField(fieldId(*CP, "Node", "value")));
  // List.head points into the structure but List is not on the cycle.
  EXPECT_FALSE(RT.isLinkField(fieldId(*CP, "List", "head")));
}

TEST(RecursiveTypes, PayloadFieldIsNotALink) {
  auto CP = compile(R"(
    class Box { int v; }
    class Node {
      Node next;
      Box payload;
    }
    class Main { static void main() { } }
  )");
  const RecursiveTypes &RT = CP->Prep.RecTypes;
  EXPECT_TRUE(RT.isLinkField(fieldId(*CP, "Node", "next")));
  EXPECT_FALSE(RT.isLinkField(fieldId(*CP, "Node", "payload")));
  EXPECT_FALSE(RT.isRecursiveClass(classId(*CP, "Box")));
}

TEST(RecursiveTypes, ErasedGenericPayloadIsNotALink) {
  // Object-typed fields never expand to subclasses, so the erased
  // payload of Node<T> does not create spurious cycles.
  auto CP = compile(R"(
    class Node<T> {
      T value;
      Node<T> next;
    }
    class Main { static void main() { } }
  )");
  const RecursiveTypes &RT = CP->Prep.RecTypes;
  EXPECT_TRUE(RT.isLinkField(fieldId(*CP, "Node", "next")));
  EXPECT_FALSE(RT.isLinkField(fieldId(*CP, "Node", "value")));
  EXPECT_FALSE(RT.isRecursiveClass(classId(*CP, "Object")));
}

TEST(RecursiveTypes, ArrayLinkedTree) {
  auto CP = compile(R"(
    class TreeNode {
      TreeNode[] children;
      int value;
    }
    class Main { static void main() { } }
  )");
  const RecursiveTypes &RT = CP->Prep.RecTypes;
  EXPECT_TRUE(RT.isRecursiveClass(classId(*CP, "TreeNode")));
  EXPECT_TRUE(RT.isLinkField(fieldId(*CP, "TreeNode", "children")));
}

TEST(RecursiveTypes, MultiClassCycle) {
  // Graph modeled as Vertex and Edge classes: both are on the cycle.
  auto CP = compile(R"(
    class Vertex { Edge[] out; int id; }
    class Edge { Vertex from; Vertex to; }
    class Main { static void main() { } }
  )");
  const RecursiveTypes &RT = CP->Prep.RecTypes;
  EXPECT_TRUE(RT.isRecursiveClass(classId(*CP, "Vertex")));
  EXPECT_TRUE(RT.isRecursiveClass(classId(*CP, "Edge")));
  EXPECT_EQ(RT.ClassScc[static_cast<size_t>(classId(*CP, "Vertex"))],
            RT.ClassScc[static_cast<size_t>(classId(*CP, "Edge"))]);
  EXPECT_TRUE(RT.isLinkField(fieldId(*CP, "Vertex", "out")));
  EXPECT_TRUE(RT.isLinkField(fieldId(*CP, "Edge", "from")));
  EXPECT_TRUE(RT.isLinkField(fieldId(*CP, "Edge", "to")));
}

TEST(RecursiveTypes, InheritanceMakesSubclassRecursive) {
  // The I-variant pattern: the link lives in the base class; subclasses
  // carry payload. Both are part of the recursive type.
  auto CP = compile(R"(
    class PNode { PNode next; }
    class IntPNode extends PNode { int value; }
    class Main { static void main() { } }
  )");
  const RecursiveTypes &RT = CP->Prep.RecTypes;
  EXPECT_TRUE(RT.isRecursiveClass(classId(*CP, "PNode")));
  EXPECT_TRUE(RT.isRecursiveClass(classId(*CP, "IntPNode")));
  EXPECT_TRUE(RT.isLinkField(fieldId(*CP, "PNode", "next")));
  EXPECT_FALSE(RT.isLinkField(fieldId(*CP, "IntPNode", "value")));
}

TEST(RecursiveTypes, PlainHierarchyIsNotRecursive) {
  auto CP = compile(R"(
    class A { int x; }
    class B extends A { int y; }
    class Main { static void main() { } }
  )");
  const RecursiveTypes &RT = CP->Prep.RecTypes;
  EXPECT_FALSE(RT.isRecursiveClass(classId(*CP, "A")));
  EXPECT_FALSE(RT.isRecursiveClass(classId(*CP, "B")));
}

TEST(RecursiveTypes, DistinctStructuresDistinctSccs) {
  auto CP = compile(R"(
    class LNode { LNode next; }
    class TNode { TNode left; TNode right; }
    class Main { static void main() { } }
  )");
  const RecursiveTypes &RT = CP->Prep.RecTypes;
  EXPECT_NE(RT.ClassScc[static_cast<size_t>(classId(*CP, "LNode"))],
            RT.ClassScc[static_cast<size_t>(classId(*CP, "TNode"))]);
}

} // namespace

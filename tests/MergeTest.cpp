//===- tests/MergeTest.cpp - Properties of the shard merges ---------------===//
///
/// \file
/// Property tests for InputTable::merge + RepetitionTree::merge, the
/// reduction SweepEngine is built on. Shards are produced by running
/// real profiled executions by hand (tests/SweepTestUtil.h) and merged
/// in controlled orders:
///
///  - identity: merging into an empty accumulator reproduces the shard;
///    merging an empty shard changes nothing;
///  - associativity: (A + B) + C == A + (B + C), including absolute
///    member object ids (the heap-id offsets compose);
///  - permutation invariance for value-disjoint runs: when no cross-run
///    unification can trigger, any merge order yields the same profiles
///    up to series-point order.
///
/// Merge is deliberately NOT commutative in general — SomeElements
/// unification compares a later run's identification-time values
/// against earlier runs' final value sets, mirroring the serial
/// session's own run-order sensitivity — so no test asserts it.
///
//===----------------------------------------------------------------------===//

#include "SweepTestUtil.h"
#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::programs;
using testutil::ShardRun;

namespace {

/// An accumulator mirroring SweepEngine's reduce phase, for merging
/// hand-run shards in arbitrary orders.
struct Accumulator {
  std::unique_ptr<AlgoProfiler> Acc;
  const CompiledProgram &CP;
  int64_t ObjIdOffset = 0;

  explicit Accumulator(const CompiledProgram &CP, const SessionOptions &SO)
      : Acc(std::make_unique<AlgoProfiler>(CP.Prep, SO.Profile)), CP(CP) {}

  void add(const AlgoProfiler &Shard, int64_t NumObjects) {
    std::vector<int32_t> Remap =
        Acc->inputs().merge(Shard.inputs(), ObjIdOffset);
    Acc->tree().merge(Shard.tree(), Remap);
    ObjIdOffset += NumObjects;
  }
  void add(const ShardRun &S) { add(*S.Prof, S.NumObjects); }

  std::string profileSig(bool SortPoints = false) const {
    return testutil::profileSignature(
        buildProfilesFrom(Acc->tree(), Acc->inputs(), CP), Acc->inputs(),
        SortPoints);
  }
  std::string treeSig() const { return testutil::treeSignature(Acc->tree()); }
  std::string inputsSig() const {
    return testutil::inputsSignature(Acc->inputs());
  }
};

/// Values seed*1000+i: runs with different seeds share no array values,
/// so no SomeElements overlap is possible and merge order cannot matter.
const char *DisjointValuesProgram = R"MJ(
class Main {
  static void main() {
    int seed = 0;
    if (hasInput()) {
      seed = readInt();
    }
    int[] a = new int[8];
    for (int i = 0; i < 8; i++) {
      a[i] = seed * 1000 + i + 1;
    }
    int sum = 0;
    for (int i = 0; i < 8; i++) {
      sum = sum + a[i];
    }
    print(sum);
  }
}
)MJ";

TEST(MergeTest, MergingOneShardIntoEmptyReproducesIt) {
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);
  SessionOptions SO;
  ShardRun S = testutil::runShard(*CP, SO, {12});
  ASSERT_TRUE(S.Result.ok()) << S.Result.TrapMessage;

  Accumulator A(*CP, SO);
  A.add(S);
  // Offset 0 + empty destination: the merged state must equal the
  // shard's own, member ids included.
  EXPECT_EQ(A.treeSig(), testutil::treeSignature(S.Prof->tree()));
  EXPECT_EQ(A.inputsSig(), testutil::inputsSignature(S.Prof->inputs()));
  EXPECT_EQ(A.profileSig(),
            testutil::profileSignature(
                buildProfilesFrom(S.Prof->tree(), S.Prof->inputs(), *CP),
                S.Prof->inputs()));
}

TEST(MergeTest, MergingAnEmptyShardIsIdentity) {
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);
  SessionOptions SO;
  Accumulator A(*CP, SO);
  A.add(testutil::runShard(*CP, SO, {8}));
  std::string Tree = A.treeSig(), Inputs = A.inputsSig(),
              Profiles = A.profileSig();

  // A never-run profiler: empty tree, empty table, zero objects.
  AlgoProfiler Empty(CP->Prep, SO.Profile);
  A.add(Empty, 0);
  EXPECT_EQ(A.treeSig(), Tree);
  EXPECT_EQ(A.inputsSig(), Inputs);
  EXPECT_EQ(A.profileSig(), Profiles);
}

TEST(MergeTest, MergeIsAssociative) {
  // (A + B) + C vs A + (B + C): the right side first reduces B and C
  // into an intermediate accumulator, then folds that accumulated state
  // in — offsets compose, so even absolute member ids must agree.
  for (const std::string &Src :
       {seededInsertionSortProgram(InputOrder::Random),
        std::string(DisjointValuesProgram), ioSumProgram()}) {
    auto CP = testutil::compile(Src);
    ASSERT_TRUE(CP);
    SessionOptions SO;
    ShardRun A = testutil::runShard(*CP, SO, {4});
    ShardRun B = testutil::runShard(*CP, SO, {8});
    ShardRun C = testutil::runShard(*CP, SO, {12});
    ASSERT_TRUE(A.Result.ok() && B.Result.ok() && C.Result.ok());

    Accumulator Left(*CP, SO);
    Left.add(A);
    Left.add(B);
    Left.add(C);

    Accumulator BC(*CP, SO);
    BC.add(B);
    BC.add(C);
    Accumulator Right(*CP, SO);
    Right.add(A);
    Right.add(*BC.Acc, BC.ObjIdOffset);

    EXPECT_EQ(Left.treeSig(), Right.treeSig());
    EXPECT_EQ(Left.inputsSig(), Right.inputsSig());
    EXPECT_EQ(Left.profileSig(), Right.profileSig());
  }
}

TEST(MergeTest, ValueDisjointRunsAreOrderInvariant) {
  // With pairwise-disjoint value sets nothing can unify cross-run, so
  // every merge order must produce the same profiles up to the order of
  // pooled series points (which legitimately follows run order).
  auto CP = testutil::compile(DisjointValuesProgram);
  ASSERT_TRUE(CP);
  SessionOptions SO;
  std::vector<ShardRun> Shards;
  for (int64_t Seed : {1, 2, 3, 4, 5}) {
    Shards.push_back(testutil::runShard(*CP, SO, {Seed}));
    ASSERT_TRUE(Shards.back().Result.ok());
  }

  auto SigOf = [&](const std::vector<size_t> &Order) {
    Accumulator A(*CP, SO);
    for (size_t I : Order)
      A.add(Shards[I]);
    return A.profileSig(/*SortPoints=*/true);
  };

  std::vector<size_t> Order(Shards.size());
  std::iota(Order.begin(), Order.end(), 0u);
  std::string Baseline = SigOf(Order);
  EXPECT_NE(Baseline.find("algo"), std::string::npos);

  std::mt19937 Rng(42);
  for (int Shuffle = 0; Shuffle < 6; ++Shuffle) {
    std::shuffle(Order.begin(), Order.end(), Rng);
    EXPECT_EQ(Baseline, SigOf(Order)) << "shuffle=" << Shuffle;
  }
}

TEST(MergeTest, TreeMergeAlignsByKeyAndOffsetsParents) {
  // Direct unit test of RepetitionTree::merge on hand-built trees:
  // children align by RepKey, source records append after destination
  // records, and ParentInvocation indices shift by the destination
  // parent's pre-merge history length.
  RepKey KeyX{RepKind::Loop, 1, 0};
  RepKey KeyY{RepKind::Loop, 1, 1};
  auto StepRecord = [](RepetitionNode *Parent, int64_t Steps,
                       int32_t ParentInv) {
    InvocationRecord R;
    R.Costs.add({CostKind::Step, -1, -1}, Steps);
    R.ParentNode = Parent;
    R.ParentInvocation = ParentInv;
    R.Finalized = true;
    return R;
  };

  RepetitionTree Dst;
  Dst.root().History.push_back(StepRecord(nullptr, 100, -1));
  Dst.root().TotalInvocations = 1;
  RepetitionNode &DstX = Dst.getOrCreateChild(Dst.root(), KeyX, "X");
  DstX.History.push_back(StepRecord(&Dst.root(), 5, 0));
  DstX.History.push_back(StepRecord(&Dst.root(), 7, 0));
  DstX.TotalInvocations = 2;

  RepetitionTree Src;
  Src.root().History.push_back(StepRecord(nullptr, 200, -1));
  Src.root().History.push_back(StepRecord(nullptr, 300, -1));
  Src.root().TotalInvocations = 2;
  RepetitionNode &SrcX = Src.getOrCreateChild(Src.root(), KeyX, "X");
  SrcX.History.push_back(StepRecord(&Src.root(), 9, 1));
  SrcX.TotalInvocations = 1;
  RepetitionNode &SrcY = Src.getOrCreateChild(Src.root(), KeyY, "Y");
  SrcY.History.push_back(StepRecord(&Src.root(), 11, 0));
  SrcY.TotalInvocations = 1;

  Dst.merge(Src, {});

  EXPECT_EQ(Dst.numRepetitions(), 2);
  ASSERT_EQ(Dst.root().History.size(), 3u);
  EXPECT_EQ(Dst.root().TotalInvocations, 3);
  EXPECT_EQ(Dst.root().History[1].Costs.steps(), 200);

  RepetitionNode *X = Dst.root().findChild(KeyX);
  ASSERT_NE(X, nullptr);
  ASSERT_EQ(X->History.size(), 3u);
  EXPECT_EQ(X->TotalInvocations, 3);
  EXPECT_EQ(X->History[2].Costs.steps(), 9);
  // Src record pointed at src-root invocation 1; dst root had 1 record
  // before the merge, so it now points at dst-root invocation 2.
  EXPECT_EQ(X->History[2].ParentInvocation, 2);
  EXPECT_EQ(X->History[2].ParentNode, &Dst.root());
  EXPECT_EQ(X->History[0].ParentInvocation, 0);

  RepetitionNode *Y = Dst.root().findChild(KeyY);
  ASSERT_NE(Y, nullptr);
  ASSERT_EQ(Y->History.size(), 1u);
  EXPECT_EQ(Y->History[0].Costs.steps(), 11);
  EXPECT_EQ(Y->History[0].ParentInvocation, 1);
  EXPECT_EQ(Y->History[0].ParentNode, &Dst.root());
}

TEST(MergeTest, InputTableMergeRemapsAndTranslatesMemberIds) {
  // Two runs of the binary-search program build value-identical int
  // arrays, so the second shard's array inputs must unify with the
  // first run's — exactly as a serial session unifies them — with
  // member object ids translated by the first run's object count.
  // (Structure inputs, by contrast, never unify cross-run: each run's
  // objects are distinct, in the sweep just as in a serial session.)
  auto CP = testutil::compile(binarySearchProgram(8, 4));
  ASSERT_TRUE(CP);
  SessionOptions SO;
  ShardRun A = testutil::runShard(*CP, SO);
  ShardRun B = testutil::runShard(*CP, SO);
  ASSERT_TRUE(A.Result.ok() && B.Result.ok());

  Accumulator Acc(*CP, SO);
  Acc.add(A);
  size_t LiveAfterA = Acc.Acc->inputs().liveInputs().size();
  Acc.add(B);
  // Identical runs: every one of B's array inputs lands on an existing
  // one, so the live count does not grow...
  EXPECT_EQ(Acc.Acc->inputs().liveInputs().size(), LiveAfterA);

  // ...and matches a serial session over the same two runs.
  ProfileSession Serial(*CP, SO);
  ASSERT_TRUE(Serial.run("Main", "main").ok());
  ASSERT_TRUE(Serial.run("Main", "main").ok());
  EXPECT_EQ(Acc.Acc->inputs().liveInputs().size(),
            Serial.inputs().liveInputs().size());

  // Member ids from shard B appear shifted by A's object count, and the
  // merged membership resolves them to the unified inputs.
  const InputTable &BT = B.Prof->inputs();
  for (int32_t Id : BT.liveInputs()) {
    for (int64_t Obj : BT.info(Id).Members) {
      int32_t Mapped = Acc.Acc->inputs().inputOf(
          static_cast<vm::ObjId>(Obj + A.NumObjects));
      EXPECT_GE(Mapped, 0);
    }
  }
}

} // namespace

#!/usr/bin/env bash
# Journal boundedness through the real binaries: algoprofd is
# crash-looped (SIGKILL, no drain) five times on the same write-ahead
# journal with size-triggered compaction enabled, running jobs in every
# incarnation. Without compaction the WAL grows with every accepted
# job forever; with it the size must stay bounded by the compaction
# threshold plus one session's churn, in every incarnation, and the
# compacted file must remain a valid journal every daemon can reload.
# Invoked by ctest as `journal_compact_test.sh <algoprofd> <client>`.
set -u

DAEMON=$1
CLIENT=$2
WORK=$(mktemp -d)
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT
FAILURES=0

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

SOCK="$WORK/ap.sock"
JOURNAL="$WORK/ap.journal"
CORPUS=seeded_insertion_sort_random
# Small enough that a handful of sessions crosses it: every incarnation
# must compact at least once.
COMPACT_BYTES=512
# The bound the WAL must never exceed when observed between sessions:
# threshold + one uncompacted session's worth of records + slack.
BOUND=4096

start_daemon() {
  rm -f "$SOCK"
  "$DAEMON" --socket "$SOCK" --journal "$JOURNAL" --jobs 2 \
    --compact-bytes "$COMPACT_BYTES" > "$WORK/daemon.log" 2>&1 &
  DPID=$!
  for _ in $(seq 100); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DPID" 2>/dev/null || break
    sleep 0.05
  done
  fail "daemon did not come up: $(cat "$WORK/daemon.log")"
  return 1
}

MAX_SIZE=0
for INCARNATION in 1 2 3 4 5; do
  start_daemon || exit 1
  for JOB in 1 2 3 4 5 6; do
    "$CLIENT" --connect "unix:$SOCK" --corpus "$CORPUS" \
      --seeds "$((JOB * 3)),$((JOB * 5))" --quiet \
      --out "$WORK/out.json" 2> "$WORK/client.err"
    rc=$?
    [ "$rc" -eq 0 ] || fail \
      "incarnation $INCARNATION job $JOB failed (exit $rc): \
$(cat "$WORK/client.err")"
  done
  # Crash hard at an arbitrary journal checkpoint: compaction's
  # tmp+rename cutover must leave a loadable journal behind no matter
  # where the SIGKILL lands.
  kill -9 "$DPID" 2>/dev/null
  wait "$DPID" 2>/dev/null
  DPID=""

  SIZE=$(wc -c < "$JOURNAL")
  [ "$SIZE" -le "$BOUND" ] \
    || fail "incarnation $INCARNATION: journal is $SIZE bytes (> $BOUND)"
  [ "$SIZE" -gt "$MAX_SIZE" ] && MAX_SIZE=$SIZE
  grep -q '^algoprof-journal/1$' "$JOURNAL" \
    || fail "incarnation $INCARNATION: journal lost its header"
done

# 30 accepted jobs crossed the 512-byte threshold many times over; the
# observed maximum proves compaction ran rather than the bound being
# generous (an uncompacted journal would hold every A record payload).
echo "max observed journal size across the crash loop: $MAX_SIZE bytes"
[ "$MAX_SIZE" -le "$BOUND" ] || fail "journal exceeded the bound"

# The final journal still reloads into a daemon that serves fresh jobs.
start_daemon || exit 1
"$CLIENT" --connect "unix:$SOCK" --corpus "$CORPUS" --seeds 4,8 \
  --quiet --out "$WORK/final.json" 2> "$WORK/final.err"
rc=$?
[ "$rc" -eq 0 ] || fail "post-loop submit failed: $(cat "$WORK/final.err")"
kill -TERM "$DPID" 2>/dev/null
wait "$DPID" 2>/dev/null
DPID=""

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES journal compaction test(s) failed" >&2
  exit 1
fi
echo "all journal compaction tests passed"

//===- tests/ReportTest.cpp - Report rendering ----------------------------===//

#include "TestUtil.h"
#include "programs/Programs.h"
#include "report/AsciiPlot.h"
#include "report/CsvWriter.h"
#include "report/TablePrinter.h"
#include "report/TreePrinter.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

TEST(Report, TablePrinterAligns) {
  report::Table T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer-name", "22"});
  std::string S = T.str();
  EXPECT_NE(S.find("name"), std::string::npos);
  EXPECT_NE(S.find("longer-name"), std::string::npos);
  EXPECT_NE(S.find("---"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(S.begin(), S.end(), '\n'), 4);
}

TEST(Report, CsvWriterFormat) {
  std::vector<std::pair<std::string, std::vector<SeriesPoint>>> Series = {
      {"a", {{1, 2}, {3, 4}}},
      {"b", {{5, 6}}},
  };
  std::string Csv = report::seriesToCsv(Series);
  EXPECT_EQ(Csv, "series,size,cost\na,1,2\na,3,4\nb,5,6\n");
}

TEST(Report, AsciiPlotContainsGlyphsAndLegend) {
  report::PlotSeries S;
  S.Name = "steps";
  S.Glyph = '*';
  for (int I = 1; I <= 10; ++I)
    S.Points.push_back({static_cast<double>(I),
                        static_cast<double>(I * I)});
  std::string Plot = report::renderScatter({S}, "test plot");
  EXPECT_NE(Plot.find("test plot"), std::string::npos);
  EXPECT_NE(Plot.find('*'), std::string::npos);
  EXPECT_NE(Plot.find("* = steps"), std::string::npos);
}

TEST(Report, AsciiPlotEmptySeriesDoesNotCrash) {
  std::string Plot = report::renderScatter({}, "empty");
  EXPECT_NE(Plot.find("empty"), std::string::npos);
}

TEST(Report, AnnotatedTreeShowsFigure3Content) {
  auto CP = compile(programs::insertionSortProgram(
      60, 10, 2, programs::InputOrder::Random));
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  ASSERT_TRUE(S.run("Main", "main").ok());
  std::vector<AlgorithmProfile> Profiles = S.buildProfiles();
  std::string Text = report::renderAnnotatedTree(S.tree(), Profiles);
  EXPECT_NE(Text.find("List.sort loop#0"), std::string::npos);
  EXPECT_NE(Text.find("Modification of a Node-based recursive structure"),
            std::string::npos);
  EXPECT_NE(Text.find("Construction of a Node-based recursive structure"),
            std::string::npos);
  EXPECT_NE(Text.find("Data-structure-less algorithm"), std::string::npos);
  EXPECT_NE(Text.find("steps = "), std::string::npos);
}

TEST(Report, WriteFileRoundTrip) {
  std::string Path = ::testing::TempDir() + "/algoprof_report_test.csv";
  ASSERT_TRUE(report::writeFile(Path, "hello\n"));
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[16] = {};
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  EXPECT_EQ(std::string(Buf, N), "hello\n");
  std::remove(Path.c_str());
}

TEST(Report, WriteFileReportsFailure) {
  // The CLI turns this false into a non-zero exit (see cli_test.sh);
  // a directory path and a missing parent both must fail, not succeed
  // silently with the report lost.
  EXPECT_FALSE(report::writeFile(::testing::TempDir(), "x\n"));
  EXPECT_FALSE(report::writeFile(
      ::testing::TempDir() + "/no_such_dir_algoprof/out.csv", "x\n"));
}

} // namespace

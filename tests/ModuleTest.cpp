//===- tests/ModuleTest.cpp - Compiled module model tests -----------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::bc;
using namespace algoprof::testutil;

namespace {

TEST(Module, FindClassAndMethod) {
  auto CP = compile(R"(
    class A { int m() { return 1; } }
    class B extends A { int n() { return 2; } }
    class Main { static void main() { } }
  )");
  const Module &M = *CP->Mod;
  EXPECT_GE(M.findClassId("A"), 0);
  EXPECT_GE(M.findClassId("Object"), 0);
  EXPECT_EQ(M.findClassId("Nope"), -1);
  // Inherited lookup: B.m resolves to A's declaration.
  int32_t Am = M.findMethodId("A", "m");
  EXPECT_EQ(M.findMethodId("B", "m"), Am);
  EXPECT_GE(M.findMethodId("B", "n"), 0);
  EXPECT_EQ(M.findMethodId("A", "n"), -1);
  EXPECT_EQ(M.findMethodId("Nope", "m"), -1);
}

TEST(Module, SubclassRelation) {
  auto CP = compile(R"(
    class A { }
    class B extends A { }
    class C { }
    class Main { static void main() { } }
  )");
  const Module &M = *CP->Mod;
  int32_t A = M.findClassId("A"), B = M.findClassId("B"),
          C = M.findClassId("C"), Obj = M.findClassId("Object");
  EXPECT_TRUE(M.isSubclass(B, A));
  EXPECT_TRUE(M.isSubclass(B, Obj));
  EXPECT_TRUE(M.isSubclass(A, A));
  EXPECT_FALSE(M.isSubclass(A, B));
  EXPECT_FALSE(M.isSubclass(C, A));
}

TEST(Module, TypeNames) {
  auto CP = compile(R"(
    class Node { Node next; }
    class Main {
      static void main() {
        int[][] m = new int[2][2];
        Node[] ns = new Node[1];
      }
    }
  )");
  const Module &M = *CP->Mod;
  EXPECT_EQ(M.typeName(M.IntTypeId), "int");
  EXPECT_EQ(M.typeName(M.BoolTypeId), "boolean");
  bool SawIntArrArr = false, SawNodeArr = false;
  for (size_t T = 0; T < M.Types.size(); ++T) {
    std::string Name = M.typeName(static_cast<TypeId>(T));
    if (Name == "int[][]")
      SawIntArrArr = true;
    if (Name == "Node[]")
      SawNodeArr = true;
  }
  EXPECT_TRUE(SawIntArrArr);
  EXPECT_TRUE(SawNodeArr);
}

TEST(Module, FieldTableConsistent) {
  auto CP = compile(R"(
    class A { int a; A link; }
    class B extends A { int b; }
    class Main { static void main() { } }
  )");
  const Module &M = *CP->Mod;
  const ClassInfo &B =
      M.Classes[static_cast<size_t>(M.findClassId("B"))];
  ASSERT_EQ(B.FieldIds.size(), 3u);
  // Layout slots are dense and match the table.
  for (size_t Slot = 0; Slot < B.FieldIds.size(); ++Slot)
    EXPECT_EQ(M.Fields[static_cast<size_t>(B.FieldIds[Slot])].Slot,
              static_cast<int32_t>(Slot));
  // Inherited field ids point at the declaring class.
  EXPECT_EQ(M.Fields[static_cast<size_t>(B.FieldIds[0])].ClassId,
            M.findClassId("A"));
  EXPECT_EQ(M.Fields[static_cast<size_t>(B.FieldIds[2])].ClassId,
            M.findClassId("B"));
}

TEST(Module, QualifiedNames) {
  auto CP = compile(R"(
    class A {
      A() { }
      void m() { }
    }
    class Main { static void main() { } }
  )");
  bool SawCtor = false, SawMethod = false;
  for (const MethodInfo &M : CP->Mod->Methods) {
    if (M.QualifiedName == "A.<init>") {
      SawCtor = true;
      EXPECT_TRUE(M.IsCtor);
    }
    if (M.QualifiedName == "A.m")
      SawMethod = true;
  }
  EXPECT_TRUE(SawCtor);
  EXPECT_TRUE(SawMethod);
}

} // namespace

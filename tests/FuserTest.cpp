//===- tests/FuserTest.cpp - Superinstruction fuser tests -----------------===//
///
/// \file
/// Unit tests for the prepare-time superinstruction fuser (Fuser.h):
/// which clusters it selects, which barriers stop it, that the rewrite
/// is pc-preserving (interior shadows intact), that the disassembler
/// prints every fused form, and that the verifier accepts exactly the
/// fuser's output while rejecting malformed fused instructions a fuzz
/// mutator might synthesize.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "bytecode/Disassembler.h"
#include "bytecode/Fuser.h"
#include "bytecode/Verifier.h"
#include "programs/Programs.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::bc;

namespace {

/// A minimal module holding one static method "T.f".
Module tiny(std::vector<Instr> Code, int NumLocals = 2) {
  Module M;
  M.IntTypeId = 0;
  M.Types.push_back({RtTypeKind::Int, -1, -1});
  M.BoolTypeId = 1;
  M.Types.push_back({RtTypeKind::Bool, -1, -1});
  ClassInfo C;
  C.Id = 0;
  C.Name = "T";
  C.Type = 2;
  M.Types.push_back({RtTypeKind::Class, 0, -1});
  M.Classes.push_back(C);
  MethodInfo F;
  F.Id = 0;
  F.ClassId = 0;
  F.Name = "f";
  F.IsStatic = true;
  F.NumArgs = 0;
  F.NumLocals = NumLocals;
  F.ReturnsValue = false;
  F.QualifiedName = "T.f";
  F.Code = std::move(Code);
  M.Methods.push_back(std::move(F));
  return M;
}

Instr ins(Opcode Op, int32_t A = 0, int32_t B = 0, int64_t Imm = 0) {
  return {Op, A, B, Imm};
}

std::vector<Instr> fuse(const Module &M, FusionStats *Stats = nullptr,
                        std::vector<char> Barrier = {}) {
  if (Barrier.empty())
    Barrier.assign(M.Methods[0].Code.size(), 0);
  return fuseMethod(M.Methods[0], Barrier, Stats);
}

bool hasProblem(const std::vector<std::string> &Problems,
                const std::string &Needle) {
  for (const std::string &P : Problems)
    if (P.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(Fuser, FusesCompareBranch) {
  // load 0; load 1; cmplt; iftrue @0 — the canonical loop-header shape,
  // eligible for the widest compare form.
  Module M = tiny({ins(Opcode::Load, 0), ins(Opcode::Load, 1),
                   ins(Opcode::CmpLt), ins(Opcode::IfTrue, 0),
                   ins(Opcode::Ret)});
  FusionStats Stats;
  std::vector<Instr> Fused = fuse(M, &Stats);
  ASSERT_EQ(Fused.size(), M.Methods[0].Code.size());
  EXPECT_EQ(Fused[0].Op, Opcode::FusedLoadLoadCmpBr);
  EXPECT_EQ(Fused[0].A, 0);
  EXPECT_EQ(Fused[0].B, encodeFusedCmp(Opcode::CmpLt, /*BranchIfTrue=*/true));
  EXPECT_EQ(packedSlotA(Fused[0].Imm), 0);
  EXPECT_EQ(packedSlotB(Fused[0].Imm), 1);
  EXPECT_EQ(Stats.Clusters, 1);
  EXPECT_EQ(Stats.FusedInstrs, 4);
  // Interior pcs keep their original instructions as shadows.
  for (size_t Pc = 1; Pc < Fused.size(); ++Pc)
    EXPECT_EQ(Fused[Pc].Op, M.Methods[0].Code[Pc].Op) << "pc " << Pc;
}

TEST(Fuser, FusesBareCompareBranch) {
  // Operands come off the stack, only [cmp; branch] fuses (width 2).
  Module M = tiny({ins(Opcode::IConst, 0, 0, 7), ins(Opcode::IConst, 0, 0, 9),
                   ins(Opcode::Add), ins(Opcode::IConst, 0, 0, 16),
                   ins(Opcode::CmpEq), ins(Opcode::IfFalse, 0),
                   ins(Opcode::Ret)});
  std::vector<Instr> Fused = fuse(M);
  EXPECT_EQ(Fused[4].Op, Opcode::FusedCmpBr);
  EXPECT_EQ(Fused[4].A, 0);
  EXPECT_EQ(Fused[4].B,
            encodeFusedCmp(Opcode::CmpEq, /*BranchIfTrue=*/false));
}

TEST(Fuser, FusesIncLocalBothDirections) {
  // i = i + 3 fuses to inclocal delta 3; i = i - 3 normalizes the
  // delta to the wrapped negation so the VM only ever adds.
  Module MAdd = tiny({ins(Opcode::Load, 1), ins(Opcode::IConst, 0, 0, 3),
                      ins(Opcode::Add), ins(Opcode::Store, 1),
                      ins(Opcode::Ret)});
  std::vector<Instr> FA = fuse(MAdd);
  ASSERT_EQ(FA[0].Op, Opcode::FusedIncLocal);
  EXPECT_EQ(FA[0].A, 1);
  EXPECT_EQ(FA[0].Imm, 3);

  Module MSub = tiny({ins(Opcode::Load, 1), ins(Opcode::IConst, 0, 0, 3),
                      ins(Opcode::Sub), ins(Opcode::Store, 1),
                      ins(Opcode::Ret)});
  std::vector<Instr> FS = fuse(MSub);
  ASSERT_EQ(FS[0].Op, Opcode::FusedIncLocal);
  EXPECT_EQ(FS[0].A, 1);
  EXPECT_EQ(FS[0].Imm, -3);
}

TEST(Fuser, DifferentStoreSlotFallsBackToLoadConstArith) {
  // j = i + 3: the store targets a different slot, so only the
  // three-wide load+const+arith prefix fuses and the store survives.
  Module M = tiny({ins(Opcode::Load, 0), ins(Opcode::IConst, 0, 0, 3),
                   ins(Opcode::Add), ins(Opcode::Store, 1),
                   ins(Opcode::Ret)});
  std::vector<Instr> Fused = fuse(M);
  ASSERT_EQ(Fused[0].Op, Opcode::FusedLoadConstArith);
  EXPECT_EQ(Fused[0].A, 0);
  EXPECT_EQ(Fused[0].B, static_cast<int32_t>(Opcode::Add));
  EXPECT_EQ(Fused[0].Imm, 3);
  EXPECT_EQ(Fused[3].Op, Opcode::Store);
}

TEST(Fuser, BranchTargetInteriorBlocksFusion) {
  // pc 2 (the cmp) is a branch target: fusing [0..3] would hide it
  // inside a cluster, so nothing may fuse across it.
  Module M = tiny({ins(Opcode::Load, 0), ins(Opcode::Load, 1),
                   ins(Opcode::CmpLt), ins(Opcode::IfTrue, 0),
                   ins(Opcode::Goto, 2)});
  std::vector<Instr> Fused = fuse(M);
  EXPECT_EQ(Fused[0].Op, Opcode::Load);
  EXPECT_EQ(Fused[1].Op, Opcode::Load);
  // The [cmp; branch] pair starting exactly at the target still fuses:
  // targets may head a cluster, never sit inside one.
  EXPECT_EQ(Fused[2].Op, Opcode::FusedCmpBr);
}

TEST(Fuser, EventBarrierInteriorBlocksFusion) {
  // A profiler-interesting pc (LoopEventMap::InterestingTarget) inside
  // the would-be cluster must stay individually reachable, because the
  // transition into it fires an event the fused fast path would skip.
  std::vector<Instr> Code = {ins(Opcode::Load, 0), ins(Opcode::Load, 1),
                             ins(Opcode::CmpLt), ins(Opcode::IfTrue, 0),
                             ins(Opcode::Ret)};
  Module M = tiny(Code);
  std::vector<char> Barrier(Code.size(), 0);
  Barrier[2] = 1;
  std::vector<Instr> Fused = fuse(M, nullptr, Barrier);
  EXPECT_EQ(Fused[0].Op, Opcode::Load);
  EXPECT_EQ(Fused[2].Op, Opcode::FusedCmpBr);

  // A barrier on the cluster head is fine — events fire on transitions
  // *into* a pc, and the transition into the head is still observed.
  std::vector<char> HeadBarrier(Code.size(), 0);
  HeadBarrier[0] = 1;
  std::vector<Instr> HeadFused = fuse(M, nullptr, HeadBarrier);
  EXPECT_EQ(HeadFused[0].Op, Opcode::FusedLoadLoadCmpBr);
}

TEST(Fuser, OutOfRangeOperandsDoNotFuse) {
  // Branch target past the end: not a fusable branch.
  Module MBadTarget =
      tiny({ins(Opcode::Load, 0), ins(Opcode::Load, 1), ins(Opcode::CmpLt),
            ins(Opcode::IfTrue, 99), ins(Opcode::Ret)});
  EXPECT_EQ(fuse(MBadTarget)[0].Op, Opcode::Load);

  // Local slot out of range (mutated modules): no fusion.
  Module MBadSlot = tiny({ins(Opcode::Load, 7), ins(Opcode::IConst, 0, 0, 1),
                          ins(Opcode::Add), ins(Opcode::Store, 7),
                          ins(Opcode::Ret)},
                         /*NumLocals=*/2);
  EXPECT_EQ(fuse(MBadSlot)[0].Op, Opcode::Load);
}

TEST(Fuser, DisassemblerPrintsFusedForms) {
  Module M = tiny({ins(Opcode::FusedLoadLoadCmpBr, 0,
                       encodeFusedCmp(Opcode::CmpLt, true), packSlots(0, 1)),
                   ins(Opcode::Load, 0), ins(Opcode::Load, 1),
                   ins(Opcode::CmpLt),
                   ins(Opcode::FusedCmpBr, 0,
                       encodeFusedCmp(Opcode::CmpNe, false)),
                   ins(Opcode::IfFalse, 0),
                   ins(Opcode::FusedLoadConstArith, 1,
                       static_cast<int32_t>(Opcode::Mul), 5),
                   ins(Opcode::IConst, 0, 0, 5), ins(Opcode::Mul),
                   ins(Opcode::FusedIncLocal, 1, 0, -2),
                   ins(Opcode::IConst, 0, 0, 2), ins(Opcode::Sub),
                   ins(Opcode::Store, 1), ins(Opcode::Ret)});
  std::string Text = disassemble(M, M.Methods[0]);
  EXPECT_NE(Text.find("fused.llcmpbr"), std::string::npos) << Text;
  EXPECT_NE(Text.find("fused.cmpbr"), std::string::npos) << Text;
  EXPECT_NE(Text.find("fused.ldcarith"), std::string::npos) << Text;
  EXPECT_NE(Text.find("fused.inclocal"), std::string::npos) << Text;
  EXPECT_NE(Text.find("cmplt iftrue"), std::string::npos) << Text;
  EXPECT_NE(Text.find("cmpne iffalse"), std::string::npos) << Text;
}

TEST(Fuser, VerifierAcceptsFuserOutputOverCorpus) {
  // Every fused method the VM could actually execute must verify: swap
  // FusedCode in for Code and re-run the verifier method by method.
  for (const std::string &Src : {
           programs::insertionSortProgram(30, 10, 1,
                                          programs::InputOrder::Random),
           programs::functionalSortProgram(30, 10, 1,
                                           programs::InputOrder::Random),
           programs::mergeSortProgram(30, 10, 1,
                                      programs::InputOrder::Random),
           programs::arrayListProgram(false, 16, 8),
           programs::bstProgram(32, 16),
           programs::binarySearchProgram(64, 16),
           programs::listing4Program(16),
       }) {
    auto CP = testutil::compile(Src);
    ASSERT_TRUE(CP);
    bool AnyFused = false;
    for (size_t I = 0; I < CP->Mod->Methods.size(); ++I) {
      const vm::PreparedMethod &PM = CP->Prep.Methods[I];
      if (PM.FusedCode.empty())
        continue;
      MethodInfo Copy = CP->Mod->Methods[I];
      ASSERT_EQ(PM.FusedCode.size(), Copy.Code.size());
      for (size_t Pc = 0; Pc < Copy.Code.size(); ++Pc)
        AnyFused |= instrWidth(PM.FusedCode[Pc].Op) > 1;
      Copy.Code = PM.FusedCode;
      std::vector<std::string> Problems = verifyMethod(*CP->Mod, Copy);
      EXPECT_TRUE(Problems.empty())
          << Copy.QualifiedName << ": " << Problems.front();
    }
    EXPECT_TRUE(AnyFused) << "corpus program fused nothing";
  }
}

TEST(Fuser, VerifierRejectsMalformedFusedInstructions) {
  // Invalid fused-cmp encoding (RefEq is not an integer comparison).
  Module MBadCmp =
      tiny({ins(Opcode::FusedCmpBr, 0, encodeFusedCmp(Opcode::RefEq, true)),
            ins(Opcode::Nop), ins(Opcode::Ret)});
  EXPECT_TRUE(hasProblem(verifyModule(MBadCmp), "fused"));

  // Packed slot out of range.
  Module MBadSlot = tiny({ins(Opcode::FusedLoadLoadCmpBr, 0,
                              encodeFusedCmp(Opcode::CmpLt, true),
                              packSlots(0, 9)),
                          ins(Opcode::Nop), ins(Opcode::Nop),
                          ins(Opcode::Nop), ins(Opcode::Ret)},
                         /*NumLocals=*/2);
  EXPECT_TRUE(hasProblem(verifyModule(MBadSlot), "local"));

  // Non-arith B operand on FusedLoadConstArith.
  Module MBadArith = tiny({ins(Opcode::FusedLoadConstArith, 0,
                               static_cast<int32_t>(Opcode::Div), 1),
                           ins(Opcode::Nop), ins(Opcode::Nop),
                           ins(Opcode::Ret)});
  EXPECT_FALSE(verifyModule(MBadArith).empty());

  // Cluster width overruns the method body (the trailing Ret keeps the
  // method past the terminator pre-check so the dataflow runs).
  Module MOverrun = tiny({ins(Opcode::Nop), ins(Opcode::FusedIncLocal, 0, 0, 1),
                          ins(Opcode::Nop), ins(Opcode::Ret)});
  EXPECT_TRUE(hasProblem(verifyModule(MOverrun),
                         "falls through past end of method"));

  // Branch target out of range.
  Module MBadTarget =
      tiny({ins(Opcode::FusedCmpBr, 42, encodeFusedCmp(Opcode::CmpLt, true)),
            ins(Opcode::Nop), ins(Opcode::Ret)});
  EXPECT_FALSE(verifyModule(MBadTarget).empty());
}

TEST(Fuser, PrepareWiresFusionAndInlineCaches) {
  auto CP = testutil::compile(programs::bstProgram(32, 16));
  ASSERT_TRUE(CP);
  EXPECT_GT(CP->Prep.FusedClusters, 0);

  int32_t VirtualSites = 0;
  for (const MethodInfo &M : CP->Mod->Methods)
    for (const Instr &I : M.Code)
      if (I.Op == Opcode::InvokeVirtual)
        ++VirtualSites;
  EXPECT_EQ(CP->Prep.NumIcSlots, VirtualSites);
  EXPECT_GT(VirtualSites, 0);

  // Every InvokeVirtual pc has a distinct slot id; every other pc none.
  std::vector<char> Seen(static_cast<size_t>(CP->Prep.NumIcSlots), 0);
  for (size_t I = 0; I < CP->Mod->Methods.size(); ++I) {
    const MethodInfo &M = CP->Mod->Methods[I];
    const vm::PreparedMethod &PM = CP->Prep.Methods[I];
    ASSERT_EQ(PM.IcSlot.size(), M.Code.size());
    for (size_t Pc = 0; Pc < M.Code.size(); ++Pc) {
      if (M.Code[Pc].Op == Opcode::InvokeVirtual) {
        ASSERT_GE(PM.IcSlot[Pc], 0);
        ASSERT_LT(PM.IcSlot[Pc], CP->Prep.NumIcSlots);
        EXPECT_FALSE(Seen[PM.IcSlot[Pc]]) << "slot reused";
        Seen[PM.IcSlot[Pc]] = 1;
      } else {
        EXPECT_EQ(PM.IcSlot[Pc], -1);
      }
    }
  }
}

} // namespace

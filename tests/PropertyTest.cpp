//===- tests/PropertyTest.cpp - Parameterized invariant sweeps ------------===//
//
// Property-style tests over input-size sweeps: exact step-count
// formulas, exact measured sizes, and structural invariants of the
// repetition tree that must hold for every program and size.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

struct Profiled {
  std::unique_ptr<CompiledProgram> CP;
  std::unique_ptr<ProfileSession> Session;
};

Profiled profileProgram(const std::string &Src) {
  Profiled P;
  P.CP = compile(Src);
  if (!P.CP)
    return P;
  P.Session = std::make_unique<ProfileSession>(*P.CP);
  vm::RunResult R = P.Session->run("Main", "main");
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return P;
}

const RepetitionNode *nodeByName(const RepetitionTree &T,
                                 const std::string &Name) {
  const RepetitionNode *Found = nullptr;
  T.forEach([&](const RepetitionNode &N) {
    if (N.Name == Name)
      Found = &N;
  });
  return Found;
}

//===----------------------------------------------------------------------===//
// Exact step formulas over a size sweep
//===----------------------------------------------------------------------===//

class SizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SizeSweep, SortedInsertionSortStepsExact) {
  int N = GetParam();
  // One run of exactly size N (sorted): outer loop visits every element
  // once (N-1 steps for N >= 2), inner loop never fires.
  Profiled P = profileProgram(programs::insertionSortProgram(
      N + 1, std::max(N, 1), 1, programs::InputOrder::Sorted));
  const RepetitionNode *Outer = nodeByName(P.Session->tree(),
                                           "List.sort loop#0");
  if (N < 2) {
    // sort() returns before entering the loop.
    EXPECT_TRUE(Outer == nullptr || Outer->totalSteps() == 0);
    return;
  }
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->totalSteps(), N - 1);
  const RepetitionNode *Inner = nodeByName(P.Session->tree(),
                                           "List.sort loop#1");
  if (Inner)
    EXPECT_EQ(Inner->totalSteps(), 0);
}

TEST_P(SizeSweep, ReversedInsertionSortStepsExact) {
  int N = GetParam();
  if (N < 2)
    return;
  Profiled P = profileProgram(programs::insertionSortProgram(
      N + 1, std::max(N, 1), 1, programs::InputOrder::Reversed));
  const RepetitionNode *Outer = nodeByName(P.Session->tree(),
                                           "List.sort loop#0");
  const RepetitionNode *Inner = nodeByName(P.Session->tree(),
                                           "List.sort loop#1");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Outer->totalSteps(), N - 1);
  // Reversed input has every inversion: n*(n-1)/2 inner steps.
  EXPECT_EQ(Inner->totalSteps(), static_cast<int64_t>(N) * (N - 1) / 2);
}

TEST_P(SizeSweep, ConstructionStepsAndSizeExact) {
  int N = GetParam();
  Profiled P = profileProgram(programs::insertionSortProgram(
      N + 1, std::max(N, 1), 1, programs::InputOrder::Random));
  const RepetitionNode *Build = nodeByName(P.Session->tree(),
                                           "Main.constructRandom loop#0");
  if (N == 0) {
    // The loop body never runs; the node may not exist at all.
    EXPECT_TRUE(Build == nullptr || Build->totalSteps() == 0);
    return;
  }
  ASSERT_NE(Build, nullptr);
  // Two harness points run: size 0 and size N. Find the size-N record.
  int64_t MaxSteps = 0, MaxSize = 0;
  for (const InvocationRecord &R : Build->History) {
    MaxSteps = std::max(MaxSteps, R.Costs.steps());
    for (const auto &[Id, Use] : R.Inputs) {
      (void)Id;
      MaxSize = std::max(MaxSize, Use.MaxSize);
    }
  }
  EXPECT_EQ(MaxSteps, N);
  // A one-node list is never link-accessed during construction (the
  // first append only writes List.head/tail, which are not recursive
  // links), so its input is invisible to the construction loop — the
  // paper's instrumentation has the same blind spot.
  if (N >= 2)
    EXPECT_EQ(MaxSize, N);
}

TEST_P(SizeSweep, ArrayListNaiveGrowCopiesExact) {
  int N = GetParam();
  if (N < 1)
    return;
  // Appending N elements with grow-by-one from capacity 1 copies
  // 1 + 2 + ... + (N-1) elements.
  Profiled P = profileProgram(programs::arrayListProgram(false, N, N));
  const RepetitionNode *Grow = nodeByName(P.Session->tree(),
                                          "ArrayList.growIfFull loop#0");
  if (N < 2) {
    // Capacity 1 suffices; grow's copy loop never runs.
    EXPECT_TRUE(Grow == nullptr || Grow->totalSteps() == 0);
  } else {
    ASSERT_NE(Grow, nullptr);
    EXPECT_EQ(Grow->totalSteps(),
              static_cast<int64_t>(N) * (N - 1) / 2);
  }
  const RepetitionNode *Append = nodeByName(P.Session->tree(),
                                            "Main.testForSize loop#0");
  ASSERT_NE(Append, nullptr);
  EXPECT_EQ(Append->totalSteps(), N);
}

TEST_P(SizeSweep, FunctionalAndImperativeSortSameStepTotals) {
  // Sec. 4.3 invariant, exact: for identical input sequences, the
  // functional sort's total recursion steps track the imperative
  // version's loop steps (both count one step per comparison position).
  int N = GetParam();
  if (N < 2)
    return;
  // The imperative harness *appends* values, the functional harness
  // *prepends* them; to give both sorts a fully inverted input, feed the
  // imperative one Reversed and the functional one Sorted.
  Profiled Imp = profileProgram(programs::insertionSortProgram(
      N + 1, std::max(N, 1), 1, programs::InputOrder::Reversed));
  Profiled Fun = profileProgram(programs::functionalSortProgram(
      N + 1, std::max(N, 1), 1, programs::InputOrder::Sorted));

  const RepetitionNode *ImpInner = nodeByName(Imp.Session->tree(),
                                              "List.sort loop#1");
  const RepetitionNode *FunInsert = nodeByName(
      Fun.Session->tree(), "FSort.insert (recursion)");
  ASSERT_NE(ImpInner, nullptr);
  ASSERT_NE(FunInsert, nullptr);
  // Both implementations perform exactly one essential step per
  // inversion: n*(n-1)/2.
  EXPECT_EQ(ImpInner->totalSteps(), static_cast<int64_t>(N) * (N - 1) / 2);
  EXPECT_EQ(FunInsert->totalSteps(),
            static_cast<int64_t>(N) * (N - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 21, 40));

//===----------------------------------------------------------------------===//
// Structural invariants over representative programs
//===----------------------------------------------------------------------===//

class TreeInvariants : public ::testing::TestWithParam<const char *> {
protected:
  std::string source() const {
    std::string Which = GetParam();
    if (Which == "insertion")
      return programs::insertionSortProgram(50, 10, 2,
                                            programs::InputOrder::Random);
    if (Which == "functional")
      return programs::functionalSortProgram(
          50, 10, 2, programs::InputOrder::Random);
    if (Which == "mergesort")
      return programs::mergeSortProgram(50, 10, 2,
                                        programs::InputOrder::Random);
    if (Which == "arraylist")
      return programs::arrayListProgram(false, 40, 8);
    return programs::listing5Program(8, 8);
  }
};

TEST_P(TreeInvariants, AllRecordsFinalizedAndNonNegative) {
  Profiled P = profileProgram(source());
  P.Session->tree().forEach([](const RepetitionNode &N) {
    for (const InvocationRecord &R : N.History) {
      EXPECT_TRUE(R.Finalized);
      for (const auto &[Key, Count] : R.Costs.entries()) {
        (void)Key;
        EXPECT_GE(Count, 0);
      }
      for (const auto &[Id, Use] : R.Inputs) {
        EXPECT_GE(Id, 0);
        EXPECT_GE(Use.MaxSize, 0);
        EXPECT_LE(Use.FirstSize, Use.MaxSize);
        EXPECT_LE(Use.LastSize, Use.MaxSize);
      }
    }
  });
}

TEST_P(TreeInvariants, ParentLinksAreConsistent) {
  Profiled P = profileProgram(source());
  P.Session->tree().forEach([](const RepetitionNode &N) {
    for (const auto &C : N.Children)
      EXPECT_EQ(C->Parent, &N);
    for (const InvocationRecord &R : N.History) {
      if (!R.ParentNode)
        continue;
      EXPECT_GE(R.ParentInvocation, 0);
      EXPECT_LT(static_cast<size_t>(R.ParentInvocation),
                R.ParentNode->History.size());
    }
  });
}

TEST_P(TreeInvariants, ChildStepsNeverExceedParentIterationBudget) {
  // Each child invocation belongs to exactly one parent invocation and
  // the parent's record index is within bounds; moreover the number of
  // child invocations attributed to a parent invocation never exceeds
  // the parent's (steps + 1) for loop parents of loop children in
  // structured code.
  Profiled P = profileProgram(source());
  P.Session->tree().forEach([](const RepetitionNode &N) {
    if (!N.Parent || N.Parent->Key.Kind != RepKind::Loop ||
        N.Key.Kind != RepKind::Loop)
      return;
    std::map<int32_t, int64_t> PerParent;
    for (const InvocationRecord &R : N.History)
      if (R.ParentNode == N.Parent)
        ++PerParent[R.ParentInvocation];
    for (const auto &[ParentInv, Count] : PerParent) {
      const InvocationRecord &ParentRec =
          N.Parent->History[static_cast<size_t>(ParentInv)];
      EXPECT_LE(Count, ParentRec.Costs.steps() + 1);
    }
  });
}

TEST_P(TreeInvariants, DeterministicAcrossRuns) {
  Profiled A = profileProgram(source());
  Profiled B = profileProgram(source());
  // Same totals, node for node (names are canonical).
  std::map<std::string, int64_t> StepsA, StepsB;
  A.Session->tree().forEach([&](const RepetitionNode &N) {
    StepsA[N.Name] += N.totalSteps();
  });
  B.Session->tree().forEach([&](const RepetitionNode &N) {
    StepsB[N.Name] += N.totalSteps();
  });
  EXPECT_EQ(StepsA, StepsB);
}

INSTANTIATE_TEST_SUITE_P(Programs, TreeInvariants,
                         ::testing::Values("insertion", "functional",
                                           "mergesort", "arraylist",
                                           "listing5"));

} // namespace

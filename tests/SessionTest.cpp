//===- tests/SessionTest.cpp - Session API and error paths ----------------===//

#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

TEST(Session, CompileErrorReturnsNull) {
  DiagnosticEngine Diags;
  EXPECT_EQ(compileMiniJ("class A { int }", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Session, SemaErrorReturnsNull) {
  DiagnosticEngine Diags;
  EXPECT_EQ(compileMiniJ("class A { Zorp z; }", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Session, DiagnosticsCarryLocations) {
  DiagnosticEngine Diags;
  compileMiniJ("class A {\n  Zorp z;\n}", Diags);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics()[0].Loc.Line, 2);
  EXPECT_NE(Diags.str().find("unknown type 'Zorp'"), std::string::npos);
}

TEST(Session, UnknownEntryReported) {
  auto CP = compile("class Main { static void main() { } }");
  ASSERT_TRUE(CP);
  EXPECT_EQ(CP->entryMethod("Main", "nope"), -1);
  EXPECT_EQ(CP->entryMethod("Nope", "main"), -1);
  ProfileSession S(*CP);
  vm::RunResult R = S.run("Main", "nope");
  EXPECT_EQ(R.Status, vm::RunStatus::Trapped);
  EXPECT_NE(R.TrapMessage.find("no static no-arg method"),
            std::string::npos);
}

TEST(Session, EntryMustBeStaticNoArg) {
  auto CP = compile(R"(
    class Main {
      void instanceMethod() { }
      static void withArg(int x) { }
      static void main() { }
    }
  )");
  ASSERT_TRUE(CP);
  EXPECT_EQ(CP->entryMethod("Main", "instanceMethod"), -1);
  EXPECT_EQ(CP->entryMethod("Main", "withArg"), -1);
  EXPECT_GE(CP->entryMethod("Main", "main"), 0);
}

TEST(Session, AnyStaticNoArgMethodWorksAsEntry) {
  auto CP = compile(R"(
    class Tools {
      static void selfTest() {
        print(123);
      }
    }
    class Main { static void main() { } }
  )");
  ASSERT_TRUE(CP);
  vm::IoChannels Io;
  vm::RunResult R = runPlain(*CP, "Tools", "selfTest", &Io);
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(Io.Output, (std::vector<int64_t>{123}));
}

TEST(Session, RunPlainIsolatesHeapPerCall) {
  auto CP = compile(R"(
    class P { }
    class Main {
      static void main() {
        P p = new P();
        p = null;
      }
    }
  )");
  ASSERT_TRUE(CP);
  // Two plain runs behave identically (fresh interpreter per call).
  vm::RunResult A = runPlain(*CP, "Main", "main");
  vm::RunResult B = runPlain(*CP, "Main", "main");
  ASSERT_TRUE(A.ok());
  EXPECT_EQ(A.InstrCount, B.InstrCount);
}

TEST(Session, ProfilesAreRepeatableFromOneTree) {
  auto CP = compile(programs::insertionSortProgram(
      40, 10, 2, programs::InputOrder::Random));
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  ASSERT_TRUE(S.run("Main", "main").ok());
  auto P1 = S.buildProfiles();
  auto P2 = S.buildProfiles(); // Pure analysis; no state mutation.
  ASSERT_EQ(P1.size(), P2.size());
  for (size_t I = 0; I < P1.size(); ++I) {
    EXPECT_EQ(P1[I].Label, P2[I].Label);
    EXPECT_EQ(P1[I].Algo.Nodes.size(), P2[I].Algo.Nodes.size());
    EXPECT_EQ(P1[I].Invocations.size(), P2[I].Invocations.size());
  }
}

TEST(Session, GroupingStrategiesProduceCompletePartitions) {
  auto CP = compile(programs::listing5Program(6, 6));
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  ASSERT_TRUE(S.run("Main", "main").ok());
  for (GroupingStrategy Strategy :
       {GroupingStrategy::CommonInput, GroupingStrategy::SameMethod,
        GroupingStrategy::CommonInputPlusDataflow}) {
    int Covered = 0;
    for (const Algorithm &A : S.algorithms(Strategy))
      Covered += static_cast<int>(A.Nodes.size());
    EXPECT_EQ(Covered, S.tree().numRepetitions())
        << groupingStrategyName(Strategy);
  }
}

TEST(Session, HeapIsRecycledBetweenRuns) {
  // Regression test for run-state leaks: a session used to keep every
  // run's objects alive in its interpreter's heap forever. Now each run
  // ends with Heap::recycle() — memory is released, but object ids are
  // never reused, so the profiler's id-keyed input maps stay sound.
  auto CP = compile(programs::insertionSortProgram(
      8, 4, 1, programs::InputOrder::Random));
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);

  ASSERT_TRUE(S.run("Main", "main").ok());
  int64_t AfterFirst = S.interpreter().heap().numObjects();
  EXPECT_GT(AfterFirst, 0);
  EXPECT_EQ(S.interpreter().heap().numLiveObjects(), 0);

  ASSERT_TRUE(S.run("Main", "main").ok());
  // The id space keeps growing run over run (no aliasing is possible)
  // while the live set is emptied again.
  EXPECT_EQ(S.interpreter().heap().numObjects(), 2 * AfterFirst);
  EXPECT_EQ(S.interpreter().heap().numLiveObjects(), 0);

  // Identical runs unify their value-identical inputs, and both runs'
  // root invocations are present — nothing about profiling regressed.
  EXPECT_EQ(S.tree().root().History.size(), 2u);
  auto Profiles = S.buildProfiles();
  EXPECT_FALSE(Profiles.empty());
}

TEST(Session, IoCursorsDoNotLeakAcrossRuns) {
  // Each run() gets its own channels; a second run with a fresh input
  // vector must read from position zero, not where run one stopped.
  auto CP = compile(programs::ioSumProgram());
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);

  vm::IoChannels First;
  First.Input = {1, 2, 3};
  ASSERT_TRUE(S.run("Main", "main", First).ok());
  EXPECT_EQ(First.Output, (std::vector<int64_t>{1, 2, 3, 6}));

  vm::IoChannels Second;
  Second.Input = {10};
  ASSERT_TRUE(S.run("Main", "main", Second).ok());
  EXPECT_EQ(Second.Output, (std::vector<int64_t>{10, 10}));
}

TEST(Session, TrapDuringProfiledRunReportsMessage) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int z = 0;
        print(1 / z);
      }
    }
  )");
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  vm::RunResult R = S.run("Main", "main");
  EXPECT_EQ(R.Status, vm::RunStatus::Trapped);
  EXPECT_NE(R.TrapMessage.find("division by zero"), std::string::npos);
  // The session survives and can keep profiling.
  EXPECT_EQ(S.run("Main", "main").Status, vm::RunStatus::Trapped);
  EXPECT_EQ(S.tree().root().History.size(), 2u);
}

} // namespace

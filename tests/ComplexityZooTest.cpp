//===- tests/ComplexityZooTest.cpp - Log and n-log-n workloads ------------===//
//
// Beyond the paper's linear/quadratic examples: the profiler + fitter
// recover logarithmic (binary search) and linearithmic (BST build)
// cost functions.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

struct Profiled {
  std::unique_ptr<CompiledProgram> CP;
  std::unique_ptr<ProfileSession> Session;
  std::vector<AlgorithmProfile> Profiles;
};

Profiled profileProgram(const std::string &Src) {
  Profiled P;
  P.CP = compile(Src);
  if (!P.CP)
    return P;
  P.Session = std::make_unique<ProfileSession>(*P.CP);
  vm::RunResult R = P.Session->run("Main", "main");
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  P.Profiles = P.Session->buildProfiles();
  return P;
}

const AlgorithmProfile *byRoot(const Profiled &P, const std::string &R) {
  for (const AlgorithmProfile &AP : P.Profiles)
    if (AP.Algo.Root->Name == R)
      return &AP;
  return nullptr;
}

TEST(ComplexityZoo, BinarySearchIsLogarithmic) {
  Profiled P = profileProgram(programs::binarySearchProgram(512, 32));
  const AlgorithmProfile *Search = byRoot(P, "Main.search loop#0");
  ASSERT_NE(Search, nullptr);
  const AlgorithmProfile::InputSeries *S = Search->primarySeries();
  ASSERT_NE(S, nullptr);
  ASSERT_TRUE(S->Fit.Valid);
  // Clearly sub-linear; the logarithmic basis should win or come close.
  EXPECT_LT(S->Fit.growthExponent(), 0.6) << S->Fit.formula();
  EXPECT_GT(S->Fit.growthExponent(), 0.0) << S->Fit.formula();
  // Per-search steps never exceed log2(n) + 1.
  for (const SeriesPoint &Pt : S->Series)
    if (Pt.X >= 2)
      EXPECT_LE(Pt.Y, std::log2(Pt.X) + 1.0001);
}

TEST(ComplexityZoo, BinarySearchClassifiedAsTraversal) {
  Profiled P = profileProgram(programs::binarySearchProgram(128, 32));
  const AlgorithmProfile *Search = byRoot(P, "Main.search loop#0");
  ASSERT_NE(Search, nullptr);
  EXPECT_NE(Search->Label.find("Traversal"), std::string::npos)
      << Search->Label;
}

TEST(ComplexityZoo, BstBuildIsLinearithmicConstruction) {
  // The insert descent loop groups under the fill loop: the terminating
  // `cur.left = node; return;` block cannot reach the loop's back edge,
  // so by natural-loop semantics the commit write executes *outside*
  // the descent loop and attributes to the caller's fill loop — giving
  // both repetitions accesses to the tree and the intuitive grouping.
  Profiled P = profileProgram(programs::bstProgram(320, 32));
  const AlgorithmProfile *Build = byRoot(P, "Main.fill loop#0");
  ASSERT_NE(Build, nullptr);
  EXPECT_EQ(Build->Algo.Nodes.size(), 2u); // fill + descent.
  EXPECT_NE(Build->Label.find("Construction of a BstNode-based"),
            std::string::npos)
      << Build->Label;
  const AlgorithmProfile::InputSeries *S = Build->primarySeries();
  ASSERT_NE(S, nullptr);
  ASSERT_TRUE(S->Fit.Valid);
  double Exp = S->Fit.growthExponent();
  EXPECT_GT(Exp, 0.95) << S->Fit.formula();
  EXPECT_LT(Exp, 1.6) << S->Fit.formula();
}

TEST(ComplexityZoo, BstSumIsLinear) {
  Profiled P = profileProgram(programs::bstProgram(320, 32));
  const AlgorithmProfile *Sum = byRoot(P, "Bst.sum (recursion)");
  ASSERT_NE(Sum, nullptr);
  const AlgorithmProfile::InputSeries *S = Sum->primarySeries();
  ASSERT_NE(S, nullptr);
  EXPECT_NEAR(S->Fit.growthExponent(), 1.0, 0.15) << S->Fit.formula();
  EXPECT_NE(Sum->Label.find("Traversal"), std::string::npos);
}

TEST(ComplexityZoo, WhileTrueLoopExitsViaReturnAreBalanced) {
  // The BST insert loop is `while (true) { ... return; }`: its only
  // exits are method returns. The tree must still be consistent.
  Profiled P = profileProgram(programs::bstProgram(64, 64));
  const RepetitionNode *Descent = nullptr;
  P.Session->tree().forEach([&](const RepetitionNode &N) {
    if (N.Name == "Bst.insert loop#0")
      Descent = &N;
  });
  ASSERT_NE(Descent, nullptr);
  for (const InvocationRecord &R : Descent->History)
    EXPECT_TRUE(R.Finalized);
  // 63 inserts enter the descent loop (the first insert returns early).
  EXPECT_EQ(Descent->History.size(), 63u);
}

TEST(ComplexityZoo, LogarithmicFitOnSyntheticData) {
  std::vector<SeriesPoint> S;
  for (int N = 4; N <= 4096; N *= 2)
    S.push_back({static_cast<double>(N), 3 * std::log2(N)});
  fit::FitResult F = fit::fitBest(S);
  ASSERT_TRUE(F.Valid);
  EXPECT_EQ(F.Kind, fit::ModelKind::Logarithmic);
  EXPECT_NEAR(F.Coefficient, 3.0, 0.1);
  EXPECT_NE(F.formula().find("log2(n)"), std::string::npos);
}

} // namespace

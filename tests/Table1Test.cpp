//===- tests/Table1Test.cpp - The paper's Table 1, parameterized ----------===//

#include "programs/Table1Check.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::programs;
using namespace algoprof::prof;

namespace {

class Table1Test : public ::testing::TestWithParam<Table1Program> {};

TEST_P(Table1Test, InputsSizesAndGroupingMatchPaper) {
  const Table1Program &P = GetParam();
  Table1Outcome Out =
      evaluateTable1Program(P, GroupingStrategy::CommonInput);
  ASSERT_TRUE(Out.CompiledAndRan) << Out.Detail;
  // Column I: inputs detected for every row ("x" throughout Table 1).
  EXPECT_TRUE(Out.InputsDetected) << Out.Detail;
  // Column S: sizes measured correctly for every row.
  EXPECT_TRUE(Out.SizesCorrect) << Out.Detail;
  // Column G: '-' rows stay ungrouped; 'x' and '*' rows group (the
  // paper's '*' means "grouped, but fragile").
  char Expected = P.PaperG == '*' ? 'x' : P.PaperG;
  EXPECT_EQ(Out.GColumn, Expected) << Out.Detail;
}

TEST_P(Table1Test, DataflowExtensionRepairsArrayNests) {
  const Table1Program &P = GetParam();
  Table1Outcome Out = evaluateTable1Program(
      P, GroupingStrategy::CommonInputPlusDataflow);
  ASSERT_TRUE(Out.CompiledAndRan) << Out.Detail;
  // With the Sec. 5 index-dataflow extension, every designated nest
  // groups — including the rows the paper reports as '-'.
  EXPECT_EQ(Out.GColumn, 'x') << Out.Detail;
}

std::string table1Name(const ::testing::TestParamInfo<Table1Program> &I) {
  std::string Name = I.param.Name;
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table1Test,
                         ::testing::ValuesIn(table1Programs()),
                         table1Name);

} // namespace

//===- tests/ConformanceTest.cpp - MiniJ semantics conformance ------------===//
//
// Pins the observable semantics of MiniJ: evaluation order, operator
// precedence and associativity, dispatch through inheritance (the
// Table 1 "I" pattern), erased generics (the "G" pattern), and
// parameter passing.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::testutil;

namespace {

TEST(Conformance, PrecedenceAndAssociativity) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        print(2 + 3 * 4 - 10 / 2);    // 2+12-5 = 9
        print(100 - 10 - 5);          // left assoc: 85
        print(100 / 10 / 5);          // left assoc: 2
        print(7 % 4 % 2);             // (7%4)%2 = 1
        print(-2 * 3);                // -6
        print(1 + 2 < 4 == true);     // (3<4)==true -> 1
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{9, 85, 2, 1, -6, 1}));
}

TEST(Conformance, EvaluationOrderLeftToRight) {
  auto Out = runOk(R"(
    class Main {
      static int tick(int id) {
        print(id);
        return id;
      }
      static void main() {
        int s = tick(1) + tick(2) * tick(3);
        print(s);
        int[] a = new int[4];
        a[tick(0)] = tick(7);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{1, 2, 3, 7, 0, 7}));
}

TEST(Conformance, ArgumentEvaluationOrder) {
  auto Out = runOk(R"(
    class Main {
      static int tick(int id) { print(id); return id; }
      static int sum3(int a, int b, int c) { return a + b + c; }
      static void main() {
        print(sum3(tick(10), tick(20), tick(30)));
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{10, 20, 30, 60}));
}

TEST(Conformance, ReceiverEvaluatedBeforeArguments) {
  auto Out = runOk(R"(
    class Box {
      int v;
      int add(int x) { return v + x; }
    }
    class Main {
      static Box make(int v) {
        print(v);
        Box b = new Box();
        b.v = v;
        return b;
      }
      static int tick(int id) { print(id); return id; }
      static void main() {
        print(make(5).add(tick(6)));
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{5, 6, 11}));
}

TEST(Conformance, InheritancePayloadPattern) {
  // The Table 1 "I" shape: links in the base class, payload in the
  // subclass, traversal through base-typed references.
  auto Out = runOk(R"(
    class PNode {
      PNode next;
      int weight() { return 1; }
    }
    class HeavyNode extends PNode {
      int weight() { return 10; }
    }
    class Main {
      static void main() {
        PNode list = null;
        for (int i = 0; i < 4; i++) {
          PNode n;
          if (i % 2 == 0) {
            n = new HeavyNode();
          } else {
            n = new PNode();
          }
          n.next = list;
          list = n;
        }
        int total = 0;
        while (list != null) {
          total = total + list.weight(); // Virtual through the base.
          list = list.next;
        }
        print(total);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{22})); // 10+1+10+1.
}

TEST(Conformance, ErasedGenericsRoundTrip) {
  auto Out = runOk(R"(
    class Box { int v; Box(int v) { this.v = v; } }
    class Pair<A, B> {
      A first;
      B second;
      Pair(A first, B second) {
        this.first = first;
        this.second = second;
      }
    }
    class Main {
      static void main() {
        Pair<Box, Box> p = new Pair<Box, Box>(new Box(3), new Box(4));
        Box f = p.first;   // Erased Object -> Box conversion.
        Box s = p.second;
        print(f.v * 10 + s.v);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{34}));
}

TEST(Conformance, ParametersAreCopies) {
  auto Out = runOk(R"(
    class Box { int v; }
    class Main {
      static void mutate(int x, Box b) {
        x = 99;       // Copy: caller unaffected.
        b.v = 99;     // Reference: caller sees the field write.
      }
      static void main() {
        int x = 1;
        Box b = new Box();
        b.v = 1;
        mutate(x, b);
        print(x);
        print(b.v);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{1, 99}));
}

TEST(Conformance, AssignmentIsAnExpression) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        int a;
        int b;
        a = (b = 5) + 1;
        print(a);
        print(b);
        int c = 0;
        int i = 0;
        while ((c = c + 1) < 4) { i++; }
        print(c);
        print(i);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{6, 5, 4, 3}));
}

TEST(Conformance, IntegerDivisionTruncatesTowardZero) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        print(7 / 2);
        print(-7 / 2);
        print(7 % 2);
        print(-7 % 2);
        print(7 / -2);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{3, -3, 1, -1, -3}));
}

TEST(Conformance, SixtyFourBitArithmetic) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        int big = 1000000000;
        print(big * 4);          // > 2^31: stays exact in 64-bit.
        print(big * big / big);  // 10^18 fits in int64.
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{4000000000LL, 1000000000LL}));
}

TEST(Conformance, OverflowDivisionMatchesJava) {
  // Java semantics at the one overflowing division: Long.MIN_VALUE / -1
  // == Long.MIN_VALUE, Long.MIN_VALUE % -1 == 0 — reached through
  // variables so constant folding cannot hide the VM path.
  auto Out = runOk(R"(
    class Main {
      static int id(int x) {
        return x;
      }
      static void main() {
        int min = id(-9223372036854775807 - 1);
        int d = id(-1);
        print(min / d);
        print(min % d);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{-9223372036854775807LL - 1, 0}));
}

TEST(Conformance, FieldInitializationOrderInCtor) {
  auto Out = runOk(R"(
    class P {
      int a;
      int b;
      P(int x) {
        a = x;
        b = a * 2; // Sees the just-written a.
      }
    }
    class Main {
      static void main() {
        P p = new P(21);
        print(p.a + p.b);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{63}));
}

TEST(Conformance, ForInitCanBeAnExpression) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        int i;
        int s = 0;
        for (i = 3; i > 0; i--) {
          s = s + i;
        }
        print(s);
        print(i);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{6, 0}));
}

TEST(Conformance, EmptyForClausesSpin) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        int i = 0;
        for (;;) {
          i++;
          if (i == 5) { break; }
        }
        print(i);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{5}));
}

TEST(Conformance, JaggedArrayAssignmentAndNullRows) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        int[][] rows = new int[3][];
        rows[1] = new int[2];
        rows[1][1] = 9;
        print(rows[0] == null);
        print(rows[1][1]);
        rows[0] = rows[1]; // Aliased rows.
        rows[0][0] = 4;
        print(rows[1][0]);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{1, 9, 4}));
}

TEST(Conformance, WhileFalseBodyNeverRuns) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        int z = 0;
        while (false) {
          print(1 / z); // Would trap if executed.
        }
        print(z);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{0}));
}

TEST(Conformance, MethodsOnExpressionResults) {
  auto Out = runOk(R"(
    class Counter {
      int c;
      Counter bump() { c++; return this; }
      int get() { return c; }
    }
    class Main {
      static void main() {
        print(new Counter().bump().bump().bump().get());
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{3}));
}

} // namespace

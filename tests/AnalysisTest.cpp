//===- tests/AnalysisTest.cpp - CFG, dominators, natural loops ------------===//

#include "TestUtil.h"
#include "analysis/Cfg.h"
#include "analysis/Dominators.h"
#include "analysis/Loops.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::analysis;
using namespace algoprof::testutil;

namespace {

const bc::MethodInfo &methodOf(const prof::CompiledProgram &CP,
                               const std::string &Cls,
                               const std::string &Name) {
  int32_t Id = CP.Mod->findMethodId(Cls, Name);
  EXPECT_GE(Id, 0) << Cls << "." << Name << " not found";
  return CP.Mod->Methods[static_cast<size_t>(Id)];
}

TEST(Cfg, StraightLineIsOneBlock) {
  auto CP = compile(R"(
    class Main {
      static int m(int a, int b) { return a + b; }
      static void main() { print(m(1, 2)); }
    }
  )");
  Cfg G = buildCfg(methodOf(*CP, "Main", "m"));
  // Block 0 is the whole body; the compiler's unreachable-return guard
  // may add one trailing block.
  EXPECT_LE(G.numBlocks(), 2);
  EXPECT_TRUE(G.Blocks[0].Succs.empty());
}

TEST(Cfg, IfElseDiamond) {
  auto CP = compile(R"(
    class Main {
      static int m(boolean c) {
        int x = 0;
        if (c) { x = 1; } else { x = 2; }
        return x;
      }
      static void main() { print(m(true)); }
    }
  )");
  Cfg G = buildCfg(methodOf(*CP, "Main", "m"));
  // entry, then, else, join (the compiler appends an unreachable
  // terminator block after 'return', which may add one more).
  EXPECT_GE(G.numBlocks(), 4);
  EXPECT_EQ(G.Blocks[0].Succs.size(), 2u);
}

TEST(Cfg, EveryPcHasABlock) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 5; i++) {
          if (i % 2 == 0) { s = s + i; }
        }
        print(s);
      }
    }
  )");
  const bc::MethodInfo &M = methodOf(*CP, "Main", "main");
  Cfg G = buildCfg(M);
  for (size_t Pc = 0; Pc < M.Code.size(); ++Pc) {
    int B = G.blockAt(static_cast<int>(Pc));
    ASSERT_GE(B, 0);
    EXPECT_GE(static_cast<int>(Pc), G.Blocks[static_cast<size_t>(B)].Begin);
    EXPECT_LT(static_cast<int>(Pc), G.Blocks[static_cast<size_t>(B)].End);
  }
}

TEST(Cfg, PredsMatchSuccs) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int i = 0;
        while (i < 10) {
          i++;
          if (i == 5) { break; }
        }
        print(i);
      }
    }
  )");
  Cfg G = buildCfg(methodOf(*CP, "Main", "main"));
  for (const BasicBlock &B : G.Blocks)
    for (int S : B.Succs) {
      const auto &Preds = G.Blocks[static_cast<size_t>(S)].Preds;
      EXPECT_NE(std::find(Preds.begin(), Preds.end(), B.Id), Preds.end());
    }
}

TEST(Dominators, EntryDominatesAll) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 5; i++) { s = s + i; }
        print(s);
      }
    }
  )");
  Cfg G = buildCfg(methodOf(*CP, "Main", "main"));
  DominatorTree DT = computeDominators(G);
  for (const BasicBlock &B : G.Blocks)
    if (DT.isReachable(B.Id))
      EXPECT_TRUE(DT.dominates(G.entry(), B.Id));
}

TEST(Dominators, DominanceIsReflexiveAndAntisymmetric) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int x = 0;
        if (x == 0) { x = 1; } else { x = 2; }
        while (x < 10) { x = x + 3; }
        print(x);
      }
    }
  )");
  Cfg G = buildCfg(methodOf(*CP, "Main", "main"));
  DominatorTree DT = computeDominators(G);
  for (const BasicBlock &A : G.Blocks) {
    if (!DT.isReachable(A.Id))
      continue;
    EXPECT_TRUE(DT.dominates(A.Id, A.Id));
    for (const BasicBlock &B : G.Blocks) {
      if (!DT.isReachable(B.Id) || A.Id == B.Id)
        continue;
      EXPECT_FALSE(DT.dominates(A.Id, B.Id) && DT.dominates(B.Id, A.Id));
    }
  }
}

TEST(Dominators, BranchSidesDoNotDominateJoin) {
  auto CP = compile(R"(
    class Main {
      static int m(boolean c) {
        int x = 0;
        if (c) { x = 1; } else { x = 2; }
        return x;
      }
      static void main() { print(m(false)); }
    }
  )");
  Cfg G = buildCfg(methodOf(*CP, "Main", "m"));
  DominatorTree DT = computeDominators(G);
  // Blocks 1 and 2 are the branch sides; the join is reached by both.
  const BasicBlock &Then = G.Blocks[1];
  ASSERT_FALSE(Then.Succs.empty());
  int Join = Then.Succs[0];
  EXPECT_FALSE(DT.dominates(1, Join) && DT.dominates(2, Join));
}

TEST(Loops, SingleWhileLoop) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int i = 0;
        while (i < 3) { i++; }
        print(i);
      }
    }
  )");
  const bc::MethodInfo &M = methodOf(*CP, "Main", "main");
  Cfg G = buildCfg(M);
  LoopInfo LI = computeLoops(M, G, computeDominators(G));
  ASSERT_EQ(LI.numLoops(), 1);
  EXPECT_EQ(LI.Loops[0].Depth, 0);
  EXPECT_EQ(LI.Loops[0].Parent, -1);
  EXPECT_EQ(LI.Loops[0].AstLoopId, 0);
}

TEST(Loops, NestedLoopsHaveCorrectNesting) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 3; i++) {
          for (int j = 0; j < i; j++) {
            s = s + 1;
          }
        }
        print(s);
      }
    }
  )");
  const bc::MethodInfo &M = methodOf(*CP, "Main", "main");
  Cfg G = buildCfg(M);
  LoopInfo LI = computeLoops(M, G, computeDominators(G));
  ASSERT_EQ(LI.numLoops(), 2);
  const Loop *Outer = nullptr, *Inner = nullptr;
  for (const Loop &L : LI.Loops)
    (L.Depth == 0 ? Outer : Inner) = &L;
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->Parent, Outer->Id);
  EXPECT_EQ(Inner->Depth, 1);
  EXPECT_EQ(Outer->AstLoopId, 0); // Source order: outer declared first.
  EXPECT_EQ(Inner->AstLoopId, 1);
  // The inner loop's blocks are a subset of the outer loop's.
  for (size_t B = 0; B < Inner->InLoop.size(); ++B)
    if (Inner->InLoop[B])
      EXPECT_TRUE(Outer->InLoop[B]);
}

TEST(Loops, SequentialLoopsAreSiblings) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 3; i++) { s = s + i; }
        for (int j = 0; j < 3; j++) { s = s + j; }
        print(s);
      }
    }
  )");
  const bc::MethodInfo &M = methodOf(*CP, "Main", "main");
  Cfg G = buildCfg(M);
  LoopInfo LI = computeLoops(M, G, computeDominators(G));
  ASSERT_EQ(LI.numLoops(), 2);
  EXPECT_EQ(LI.Loops[0].Parent, -1);
  EXPECT_EQ(LI.Loops[1].Parent, -1);
}

TEST(Loops, ContinueProducesExtraBackEdgeNotExtraLoop) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int s = 0;
        int i = 0;
        while (i < 10) {
          i++;
          if (i % 2 == 0) { continue; }
          s = s + i;
        }
        print(s);
      }
    }
  )");
  const bc::MethodInfo &M = methodOf(*CP, "Main", "main");
  Cfg G = buildCfg(M);
  LoopInfo LI = computeLoops(M, G, computeDominators(G));
  EXPECT_EQ(LI.numLoops(), 1);
}

TEST(Loops, BreakLeavesLoopBodyIntact) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int i = 0;
        while (true) {
          i++;
          if (i == 5) { break; }
        }
        print(i);
      }
    }
  )");
  const bc::MethodInfo &M = methodOf(*CP, "Main", "main");
  Cfg G = buildCfg(M);
  LoopInfo LI = computeLoops(M, G, computeDominators(G));
  ASSERT_EQ(LI.numLoops(), 1);
}

TEST(Loops, WhileTrueInfiniteShapeDetected) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int i = 0;
        for (;;) {
          i++;
          if (i > 3) { break; }
        }
        print(i);
      }
    }
  )");
  const bc::MethodInfo &M = methodOf(*CP, "Main", "main");
  Cfg G = buildCfg(M);
  LoopInfo LI = computeLoops(M, G, computeDominators(G));
  ASSERT_EQ(LI.numLoops(), 1);
  EXPECT_EQ(LI.Loops[0].AstLoopId, 0);
}

TEST(Loops, LoopChainAtInnerBlock) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 2; i++) {
          for (int j = 0; j < 2; j++) {
            for (int k = 0; k < 2; k++) {
              s = s + 1;
            }
          }
        }
        print(s);
      }
    }
  )");
  const bc::MethodInfo &M = methodOf(*CP, "Main", "main");
  Cfg G = buildCfg(M);
  LoopInfo LI = computeLoops(M, G, computeDominators(G));
  ASSERT_EQ(LI.numLoops(), 3);
  // The deepest block's chain has three loops, innermost first.
  int DeepBlock = -1;
  for (const BasicBlock &B : G.Blocks)
    if (LI.innermostAt(B.Id) >= 0 &&
        LI.Loops[static_cast<size_t>(LI.innermostAt(B.Id))].Depth == 2)
      DeepBlock = B.Id;
  ASSERT_GE(DeepBlock, 0);
  std::vector<int> Chain = LI.loopChainAt(DeepBlock);
  ASSERT_EQ(Chain.size(), 3u);
  EXPECT_EQ(LI.Loops[static_cast<size_t>(Chain[0])].Depth, 2);
  EXPECT_EQ(LI.Loops[static_cast<size_t>(Chain[1])].Depth, 1);
  EXPECT_EQ(LI.Loops[static_cast<size_t>(Chain[2])].Depth, 0);
}

} // namespace

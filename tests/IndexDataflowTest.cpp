//===- tests/IndexDataflowTest.cpp - Index dataflow analysis --------------===//

#include "TestUtil.h"
#include "analysis/IndexDataflow.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::analysis;
using namespace algoprof::testutil;

namespace {

TEST(IndexDataflow, Listing5NestIsLinked) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int[][] array = new int[4][4];
        for (int i = 0; i < array.length; i++) {
          for (int j = 0; j < array[i].length; j++) {
            array[i][j] = 1;
          }
        }
      }
    }
  )");
  // Loop ids in source order: outer = 0, inner = 1.
  EXPECT_TRUE(CP->Dataflow.linked("Main.main", 0, 1));
  EXPECT_FALSE(CP->Dataflow.linked("Main.main", 1, 0));
}

TEST(IndexDataflow, UnrelatedOuterLoopNotLinked) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int[] a = new int[4];
        int t = 0;
        for (int r = 0; r < 3; r++) {
          for (int j = 0; j < a.length; j++) {
            t = t + a[j];
          }
        }
        print(t);
      }
    }
  )");
  // The outer loop's variable r is never used as an index.
  EXPECT_FALSE(CP->Dataflow.linked("Main.main", 0, 1));
}

TEST(IndexDataflow, WhileLoopIncrementLinked) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int[][] m = new int[3][3];
        int i = 0;
        while (i < m.length) {
          int j = 0;
          while (j < m[i].length) {
            m[i][j] = i + j;
            j++;
          }
          i++;
        }
      }
    }
  )");
  EXPECT_TRUE(CP->Dataflow.linked("Main.main", 0, 1));
}

TEST(IndexDataflow, ThreeDeepNestLinksConsecutivePairs) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int[] a = new int[64];
        for (int i = 0; i < 4; i++) {
          for (int j = 0; j < 4; j++) {
            for (int k = 0; k < 4; k++) {
              a[i * 16 + j * 4 + k] = 1;
            }
          }
        }
      }
    }
  )");
  EXPECT_TRUE(CP->Dataflow.linked("Main.main", 0, 1));
  EXPECT_TRUE(CP->Dataflow.linked("Main.main", 1, 2));
}

TEST(IndexDataflow, IndexComputedThroughArithmetic) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int[] a = new int[16];
        for (int i = 0; i < 4; i++) {
          for (int j = 0; j < 4; j++) {
            a[4 * i + j] = i;
          }
        }
      }
    }
  )");
  EXPECT_TRUE(CP->Dataflow.linked("Main.main", 0, 1));
}

TEST(IndexDataflow, PerMethodIsolation) {
  auto CP = compile(R"(
    class Main {
      static void a() {
        int[][] m = new int[2][2];
        for (int i = 0; i < 2; i++) {
          for (int j = 0; j < 2; j++) { m[i][j] = 1; }
        }
      }
      static void b() {
        for (int i = 0; i < 2; i++) {
          for (int j = 0; j < 2; j++) { }
        }
      }
      static void main() { a(); b(); }
    }
  )");
  EXPECT_TRUE(CP->Dataflow.linked("Main.a", 0, 1));
  EXPECT_FALSE(CP->Dataflow.linked("Main.b", 0, 1));
}

TEST(IndexDataflow, NoArraysNoLinks) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 10; i++) {
          for (int j = 0; j < i; j++) {
            s = s + j;
          }
        }
        print(s);
      }
    }
  )");
  EXPECT_TRUE(CP->Dataflow.empty());
}

} // namespace

//===- tests/SamplingTest.cpp - Invocation sampling (Sec. 3.3) ------------===//
//
// The paper notes that keeping the full per-invocation history "can
// lead to large memory requirements" and suggests sampling a subset of
// invocations for frequently invoked repetitions. These tests cover the
// stride-doubling sampler.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

struct Profiled {
  std::unique_ptr<CompiledProgram> CP;
  std::unique_ptr<ProfileSession> Session;
};

Profiled profileProgram(const std::string &Src, int64_t Threshold) {
  Profiled P;
  P.CP = compile(Src);
  if (!P.CP)
    return P;
  SessionOptions Opts;
  Opts.Profile.SampleThreshold = Threshold;
  P.Session = std::make_unique<ProfileSession>(*P.CP, Opts);
  vm::RunResult R = P.Session->run("Main", "main");
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return P;
}

const RepetitionNode *nodeByName(const RepetitionTree &T,
                                 const std::string &Name) {
  const RepetitionNode *Found = nullptr;
  T.forEach([&](const RepetitionNode &N) {
    if (N.Name == Name)
      Found = &N;
  });
  return Found;
}

TEST(Sampling, DisabledKeepsEveryInvocation) {
  Profiled P = profileProgram(
      programs::insertionSortProgram(60, 10, 3,
                                     programs::InputOrder::Random),
      /*Threshold=*/0);
  P.Session->tree().forEach([](const RepetitionNode &N) {
    EXPECT_EQ(static_cast<int64_t>(N.History.size()),
              N.TotalInvocations);
  });
}

TEST(Sampling, CapsRecordGrowthLogarithmically) {
  // The inner sort loop runs thousands of times; with threshold T the
  // recorded history grows like T * log2(total/T).
  Profiled Full = profileProgram(
      programs::insertionSortProgram(120, 10, 3,
                                     programs::InputOrder::Random),
      0);
  Profiled Sampled = profileProgram(
      programs::insertionSortProgram(120, 10, 3,
                                     programs::InputOrder::Random),
      /*Threshold=*/32);

  const RepetitionNode *FullInner =
      nodeByName(Full.Session->tree(), "List.sort loop#1");
  const RepetitionNode *SampInner =
      nodeByName(Sampled.Session->tree(), "List.sort loop#1");
  ASSERT_NE(FullInner, nullptr);
  ASSERT_NE(SampInner, nullptr);
  EXPECT_EQ(FullInner->TotalInvocations, SampInner->TotalInvocations);
  EXPECT_GT(FullInner->History.size(), 1000u);
  EXPECT_LT(SampInner->History.size(), 300u);
  EXPECT_GE(SampInner->History.size(), 32u);
}

TEST(Sampling, DensePrefixIsExact) {
  Profiled P = profileProgram(
      programs::insertionSortProgram(60, 10, 2,
                                     programs::InputOrder::Random),
      /*Threshold=*/16);
  const RepetitionNode *Outer =
      nodeByName(P.Session->tree(), "List.sort loop#0");
  ASSERT_NE(Outer, nullptr);
  // Fewer invocations than the threshold: everything recorded.
  ASSERT_LE(Outer->TotalInvocations, 16);
  EXPECT_EQ(static_cast<int64_t>(Outer->History.size()),
            Outer->TotalInvocations);
}

TEST(Sampling, ProfilesStayWellFormedAndFitsHold) {
  Profiled P = profileProgram(
      programs::insertionSortProgram(120, 10, 3,
                                     programs::InputOrder::Random),
      /*Threshold=*/24);
  // Structural invariants hold on the sampled records.
  P.Session->tree().forEach([](const RepetitionNode &N) {
    EXPECT_LE(static_cast<int64_t>(N.History.size()),
              N.TotalInvocations);
    for (const InvocationRecord &R : N.History) {
      EXPECT_TRUE(R.Finalized);
      if (R.ParentNode && R.ParentInvocation >= 0)
        EXPECT_LT(static_cast<size_t>(R.ParentInvocation),
                  R.ParentNode->History.size());
    }
  });
  // The sort algorithm still fits quadratic from sampled data.
  for (const AlgorithmProfile &AP : P.Session->buildProfiles()) {
    if (AP.Algo.Root->Name != "List.sort loop#0")
      continue;
    const AlgorithmProfile::InputSeries *S = AP.primarySeries();
    ASSERT_NE(S, nullptr);
    EXPECT_NEAR(S->Fit.growthExponent(), 2.0, 0.35) << S->Fit.formula();
  }
}

TEST(Sampling, TrapUnwindStillBalanced) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int[] a = new int[4];
        for (int r = 0; r < 100; r++) {
          for (int i = 0; i <= r; i++) {
            a[i % 8] = i;  // Traps once i % 8 exceeds 3... immediately ok
          }
        }
      }
    }
  )");
  ASSERT_TRUE(CP);
  SessionOptions Opts;
  Opts.Profile.SampleThreshold = 8;
  ProfileSession S(*CP, Opts);
  vm::RunResult R = S.run("Main", "main");
  EXPECT_EQ(R.Status, vm::RunStatus::Trapped);
  S.tree().forEach([](const RepetitionNode &N) {
    for (const InvocationRecord &Rec : N.History)
      EXPECT_TRUE(Rec.Finalized);
  });
}

} // namespace

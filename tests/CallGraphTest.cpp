//===- tests/CallGraphTest.cpp - Call graph and recursion headers ---------===//

#include "TestUtil.h"
#include "analysis/CallGraph.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::analysis;
using namespace algoprof::testutil;

namespace {

int32_t methodId(const prof::CompiledProgram &CP, const std::string &Cls,
                 const std::string &Name) {
  int32_t Id = CP.Mod->findMethodId(Cls, Name);
  EXPECT_GE(Id, 0);
  return Id;
}

TEST(CallGraph, DirectRecursionIsHeader) {
  auto CP = compile(R"(
    class Main {
      static int fact(int n) {
        if (n <= 1) { return 1; }
        return n * fact(n - 1);
      }
      static void main() { print(fact(5)); }
    }
  )");
  const CallGraph &CG = CP->Prep.Calls;
  int32_t Fact = methodId(*CP, "Main", "fact");
  int32_t MainM = methodId(*CP, "Main", "main");
  EXPECT_TRUE(CG.isRecursive(Fact));
  EXPECT_TRUE(CG.isHeader(Fact));
  EXPECT_FALSE(CG.isRecursive(MainM));
  EXPECT_FALSE(CG.isHeader(MainM));
}

TEST(CallGraph, MutualRecursionOneHeader) {
  auto CP = compile(R"(
    class Main {
      static boolean isEven(int n) {
        if (n == 0) { return true; }
        return isOdd(n - 1);
      }
      static boolean isOdd(int n) {
        if (n == 0) { return false; }
        return isEven(n - 1);
      }
      static void main() { print(isEven(10)); }
    }
  )");
  const CallGraph &CG = CP->Prep.Calls;
  int32_t Even = methodId(*CP, "Main", "isEven");
  int32_t Odd = methodId(*CP, "Main", "isOdd");
  EXPECT_TRUE(CG.isRecursive(Even));
  EXPECT_TRUE(CG.isRecursive(Odd));
  EXPECT_EQ(CG.SccId[static_cast<size_t>(Even)],
            CG.SccId[static_cast<size_t>(Odd)]);
  // Exactly one of the cycle's members is the header.
  EXPECT_EQ(static_cast<int>(CG.isHeader(Even)) +
                static_cast<int>(CG.isHeader(Odd)),
            1);
}

TEST(CallGraph, VirtualCallsResolveConservatively) {
  // A virtual call that can reach an override which recurses back makes
  // the cycle visible only under conservative resolution.
  auto CP = compile(R"(
    class Base { int step(int n) { return 0; } }
    class Rec extends Base {
      int step(int n) {
        if (n == 0) { return 0; }
        return drive(this, n - 1);
      }
      static int drive(Base b, int n) { return b.step(n); }
    }
    class Main {
      static void main() { print(Rec.drive(new Rec(), 3)); }
    }
  )");
  const CallGraph &CG = CP->Prep.Calls;
  int32_t Drive = methodId(*CP, "Rec", "drive");
  int32_t RecStep = methodId(*CP, "Rec", "step");
  EXPECT_TRUE(CG.isRecursive(Drive));
  EXPECT_TRUE(CG.isRecursive(RecStep));
  EXPECT_EQ(CG.SccId[static_cast<size_t>(Drive)],
            CG.SccId[static_cast<size_t>(RecStep)]);
}

TEST(CallGraph, NonRecursiveChainHasNoHeaders) {
  auto CP = compile(R"(
    class Main {
      static int a(int x) { return b(x) + 1; }
      static int b(int x) { return c(x) + 1; }
      static int c(int x) { return x; }
      static void main() { print(a(1)); }
    }
  )");
  const CallGraph &CG = CP->Prep.Calls;
  for (const bc::MethodInfo &M : CP->Mod->Methods) {
    EXPECT_FALSE(CG.isRecursive(M.Id)) << M.QualifiedName;
    EXPECT_FALSE(CG.isHeader(M.Id)) << M.QualifiedName;
  }
}

TEST(CallGraph, TwoIndependentCyclesTwoHeaders) {
  auto CP = compile(R"(
    class Main {
      static int f(int n) { if (n == 0) { return 0; } return f(n - 1); }
      static int g(int n) { if (n == 0) { return 0; } return g(n - 1); }
      static void main() { print(f(2) + g(2)); }
    }
  )");
  const CallGraph &CG = CP->Prep.Calls;
  int32_t F = methodId(*CP, "Main", "f");
  int32_t G = methodId(*CP, "Main", "g");
  EXPECT_TRUE(CG.isHeader(F));
  EXPECT_TRUE(CG.isHeader(G));
  EXPECT_NE(CG.SccId[static_cast<size_t>(F)],
            CG.SccId[static_cast<size_t>(G)]);
}

} // namespace

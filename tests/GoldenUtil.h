//===- tests/GoldenUtil.h - Golden-file comparison helper -------*- C++-*-===//
///
/// \file
/// expectMatchesGolden(actual, "name.ext") compares a rendered document
/// against tests/golden/<name.ext> and prints a unified-enough diff on
/// mismatch. Regenerate after an intentional format change with
///
///   ALGOPROF_UPDATE_GOLDEN=1 ctest -L obs
///
/// which rewrites the files in the source tree.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_TESTS_GOLDENUTIL_H
#define ALGOPROF_TESTS_GOLDENUTIL_H

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef ALGOPROF_GOLDEN_DIR
#error "tests/CMakeLists.txt must define ALGOPROF_GOLDEN_DIR"
#endif

namespace algoprof {
namespace testutil {

inline void expectMatchesGolden(const std::string &Actual,
                                const std::string &FileName) {
  std::string Path = std::string(ALGOPROF_GOLDEN_DIR) + "/" + FileName;
  if (std::getenv("ALGOPROF_UPDATE_GOLDEN")) {
    std::ofstream Out(Path, std::ios::binary);
    ASSERT_TRUE(Out) << "cannot write " << Path;
    Out << Actual;
    return;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In) << "missing golden file " << Path
                  << " (run with ALGOPROF_UPDATE_GOLDEN=1 to create)";
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Expected = Buf.str();
  if (Expected == Actual)
    return;
  // Point at the first differing line so the failure is readable
  // without an external diff.
  std::istringstream E(Expected), A(Actual);
  std::string EL, AL;
  int Line = 1;
  while (true) {
    bool HasE = static_cast<bool>(std::getline(E, EL));
    bool HasA = static_cast<bool>(std::getline(A, AL));
    if (!HasE && !HasA)
      break;
    if (!HasE || !HasA || EL != AL) {
      ADD_FAILURE() << FileName << " differs at line " << Line
                    << "\n  golden: " << (HasE ? EL : "<eof>")
                    << "\n  actual: " << (HasA ? AL : "<eof>")
                    << "\n(ALGOPROF_UPDATE_GOLDEN=1 regenerates)";
      return;
    }
    ++Line;
  }
  ADD_FAILURE() << FileName << " differs (line split identical, bytes "
                   "not — check trailing newline)";
}

} // namespace testutil
} // namespace algoprof

#endif // ALGOPROF_TESTS_GOLDENUTIL_H

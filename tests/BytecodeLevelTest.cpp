//===- tests/BytecodeLevelTest.cpp - VM tests on hand-built modules -------===//
//
// Exercises the interpreter below the front end: modules assembled
// instruction by instruction, so VM semantics are pinned independently
// of the compiler's code shapes.
//
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::bc;
using namespace algoprof::vm;

namespace {

/// Builds a module with one static no-arg int method "T.f" whose body is
/// \p Code (must end in RetVal), plus a void "T.main" that prints f().
struct TinyModule {
  Module M;
  int32_t EntryId = -1;

  explicit TinyModule(std::vector<Instr> Code, int32_t NumLocals = 4) {
    M.IntTypeId = 0;
    M.Types.push_back({RtTypeKind::Int, -1, -1});
    M.BoolTypeId = 1;
    M.Types.push_back({RtTypeKind::Bool, -1, -1});

    ClassInfo C;
    C.Id = 0;
    C.Name = "T";
    C.Type = static_cast<TypeId>(M.Types.size());
    M.Types.push_back({RtTypeKind::Class, 0, -1});
    M.Classes.push_back(C);

    MethodInfo F;
    F.Id = 0;
    F.ClassId = 0;
    F.Name = "f";
    F.IsStatic = true;
    F.NumArgs = 0;
    F.NumLocals = NumLocals;
    F.ReturnType = M.IntTypeId;
    F.ReturnsValue = true;
    F.QualifiedName = "T.f";
    F.Code = std::move(Code);
    M.Methods.push_back(std::move(F));

    MethodInfo MainM;
    MainM.Id = 1;
    MainM.ClassId = 0;
    MainM.Name = "main";
    MainM.IsStatic = true;
    MainM.NumArgs = 0;
    MainM.NumLocals = 0;
    MainM.ReturnType = -1;
    MainM.QualifiedName = "T.main";
    MainM.Code = {{Opcode::InvokeStatic, 0, 0, 0},
                  {Opcode::Print, 0, 0, 0},
                  {Opcode::Ret, 0, 0, 0}};
    M.Methods.push_back(std::move(MainM));
    EntryId = 1;
  }
};

RunResult runTiny(TinyModule &T, std::vector<int64_t> &Output,
                  uint64_t Fuel = 1'000'000) {
  PreparedProgram P = PreparedProgram::prepare(T.M);
  Interpreter Interp(P);
  InstrumentationPlan Plan = InstrumentationPlan::all(T.M);
  IoChannels Io;
  RunOptions Opts;
  Opts.Fuel = Fuel;
  RunResult R = Interp.run(T.EntryId, nullptr, Plan, Io, Opts);
  Output = Io.Output;
  return R;
}

TEST(BytecodeLevel, ConstantReturn) {
  TinyModule T({{Opcode::IConst, 0, 0, 77}, {Opcode::RetVal, 0, 0, 0}});
  std::vector<int64_t> Out;
  ASSERT_TRUE(runTiny(T, Out).ok());
  EXPECT_EQ(Out, (std::vector<int64_t>{77}));
}

TEST(BytecodeLevel, ArithmeticStackDiscipline) {
  // (10 - 3) * (2 + 4) % 5 = 42 % 5 = 2.
  TinyModule T({
      {Opcode::IConst, 0, 0, 10},
      {Opcode::IConst, 0, 0, 3},
      {Opcode::Sub, 0, 0, 0},
      {Opcode::IConst, 0, 0, 2},
      {Opcode::IConst, 0, 0, 4},
      {Opcode::Add, 0, 0, 0},
      {Opcode::Mul, 0, 0, 0},
      {Opcode::IConst, 0, 0, 5},
      {Opcode::Rem, 0, 0, 0},
      {Opcode::RetVal, 0, 0, 0},
  });
  std::vector<int64_t> Out;
  ASSERT_TRUE(runTiny(T, Out).ok());
  EXPECT_EQ(Out, (std::vector<int64_t>{2}));
}

TEST(BytecodeLevel, LocalsAndBranching) {
  // sum = 0; for (i = 5; i > 0; i--) sum += i;  -> 15.
  TinyModule T2({
      /*0*/ {Opcode::IConst, 0, 0, 0},
      /*1*/ {Opcode::Store, 0, 0, 0},
      /*2*/ {Opcode::IConst, 0, 0, 5},
      /*3*/ {Opcode::Store, 1, 0, 0},
      /*4*/ {Opcode::Load, 1, 0, 0},
      /*5*/ {Opcode::IConst, 0, 0, 0},
      /*6*/ {Opcode::CmpGt, 0, 0, 0},
      /*7*/ {Opcode::IfFalse, 18, 0, 0},
      /*8*/ {Opcode::Load, 0, 0, 0},
      /*9*/ {Opcode::Load, 1, 0, 0},
      /*10*/ {Opcode::Add, 0, 0, 0},
      /*11*/ {Opcode::Store, 0, 0, 0},
      /*12*/ {Opcode::Load, 1, 0, 0},
      /*13*/ {Opcode::IConst, 0, 0, 1},
      /*14*/ {Opcode::Sub, 0, 0, 0},
      /*15*/ {Opcode::Store, 1, 0, 0},
      /*16*/ {Opcode::Nop, 0, 0, 0},
      /*17*/ {Opcode::Goto, 4, 0, 0},
      /*18*/ {Opcode::Load, 0, 0, 0},
      /*19*/ {Opcode::RetVal, 0, 0, 0},
  });
  std::vector<int64_t> Out;
  ASSERT_TRUE(runTiny(T2, Out).ok());
  EXPECT_EQ(Out, (std::vector<int64_t>{15}));
}

TEST(BytecodeLevel, DupAndPop) {
  TinyModule T({
      {Opcode::IConst, 0, 0, 6},
      {Opcode::Dup, 0, 0, 0},
      {Opcode::Mul, 0, 0, 0}, // 36
      {Opcode::IConst, 0, 0, 99},
      {Opcode::Pop, 0, 0, 0}, // Discard the 99.
      {Opcode::RetVal, 0, 0, 0},
  });
  std::vector<int64_t> Out;
  ASSERT_TRUE(runTiny(T, Out).ok());
  EXPECT_EQ(Out, (std::vector<int64_t>{36}));
}

TEST(BytecodeLevel, NegNotComparisons) {
  // !(-(5) < 0) == false -> 0.
  TinyModule T({
      {Opcode::IConst, 0, 0, 5},
      {Opcode::Neg, 0, 0, 0},
      {Opcode::IConst, 0, 0, 0},
      {Opcode::CmpLt, 0, 0, 0},
      {Opcode::Not, 0, 0, 0},
      {Opcode::RetVal, 0, 0, 0},
  });
  std::vector<int64_t> Out;
  ASSERT_TRUE(runTiny(T, Out).ok());
  EXPECT_EQ(Out, (std::vector<int64_t>{0}));
}

TEST(BytecodeLevel, ExplicitTrapOpcode) {
  TinyModule T({{Opcode::Trap, 0, 0, 0}});
  std::vector<int64_t> Out;
  RunResult R = runTiny(T, Out);
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_NE(R.TrapMessage.find("explicit trap"), std::string::npos);
}

TEST(BytecodeLevel, FuelCountsInstructionsExactly) {
  // An infinite two-instruction loop: fuel must stop it at the budget.
  TinyModule T({
      {Opcode::Nop, 0, 0, 0},
      {Opcode::Goto, 0, 0, 0},
  });
  std::vector<int64_t> Out;
  RunResult R = runTiny(T, Out, /*Fuel=*/1000);
  EXPECT_EQ(R.Status, RunStatus::FuelExhausted);
  EXPECT_EQ(R.InstrCount, 1000u);
}

TEST(BytecodeLevel, NewArrayAndAccess) {
  TinyModule T({
      {Opcode::IConst, 0, 0, 3},
      {Opcode::NewArray, /*set below*/ 0, 0, 0},
      {Opcode::Store, 0, 0, 0},
      // a[1] = 42
      {Opcode::Load, 0, 0, 0},
      {Opcode::IConst, 0, 0, 1},
      {Opcode::IConst, 0, 0, 42},
      {Opcode::AStore, 0, 0, 0},
      // return a[1] + a.length
      {Opcode::Load, 0, 0, 0},
      {Opcode::IConst, 0, 0, 1},
      {Opcode::ALoad, 0, 0, 0},
      {Opcode::Load, 0, 0, 0},
      {Opcode::ArrayLen, 0, 0, 0},
      {Opcode::Add, 0, 0, 0},
      {Opcode::RetVal, 0, 0, 0},
  });
  // Intern int[] and patch the NewArray operand.
  TypeId IntArr = T.M.internArrayType(T.M.IntTypeId);
  T.M.Methods[0].Code[1].A = IntArr;
  std::vector<int64_t> Out;
  ASSERT_TRUE(runTiny(T, Out).ok());
  EXPECT_EQ(Out, (std::vector<int64_t>{45}));
}

} // namespace

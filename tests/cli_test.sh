#!/usr/bin/env bash
# CLI regression tests: strict numeric-flag validation and surfaced
# report-writer failures. Invoked by ctest as `cli_test.sh <algoprof>`.
set -u

ALGOPROF=$1
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

cat > "$WORK/ok.mj" <<'EOF'
class Main {
  static void main() {
    int n = 0;
    if (hasInput()) {
      n = readInt();
    }
    int i = 0;
    while (i < n) {
      i = i + 1;
    }
    print(i);
  }
}
EOF

# INT64_MIN / -1: used to kill the interpreter with SIGFPE (exit 136);
# Java semantics define it as INT64_MIN.
cat > "$WORK/overflow_div.mj" <<'EOF'
class Main {
  static void main() {
    int min = -9223372036854775807 - 1;
    int d = 0 - 1;
    print(min / d);
    print(min % d);
  }
}
EOF

expect_ok() {
  local desc=$1; shift
  if ! out=$("$@" 2>&1); then
    fail "$desc: expected exit 0, got $? ($out)"
  fi
}

expect_rejected() {
  local desc=$1; shift
  local out rc
  out=$("$@" 2>&1)
  rc=$?
  if [ "$rc" -eq 0 ]; then
    fail "$desc: expected non-zero exit, got 0"
  elif [ "$rc" -ge 128 ]; then
    fail "$desc: died with signal (exit $rc)"
  elif ! printf '%s' "$out" | grep -qi "invalid value\|usage:"; then
    fail "$desc: no diagnostic printed: $out"
  fi
}

# Baseline: a well-formed invocation works.
expect_ok "plain run" "$ALGOPROF" "$WORK/ok.mj"
expect_ok "good flags" "$ALGOPROF" "$WORK/ok.mj" \
  --runs 2 --jobs 2 --sample 0 --input 3,4
expect_ok "empty input list" "$ALGOPROF" "$WORK/ok.mj" --input ""

# Numeric flags used to go through atoi/atoll: "123abc" profiled 123
# runs, "x" meant 0, and overflow saturated silently.
expect_rejected "--runs trailing junk" "$ALGOPROF" "$WORK/ok.mj" --runs 123abc
expect_rejected "--runs non-numeric" "$ALGOPROF" "$WORK/ok.mj" --runs x
expect_rejected "--runs zero" "$ALGOPROF" "$WORK/ok.mj" --runs 0
expect_rejected "--runs negative" "$ALGOPROF" "$WORK/ok.mj" --runs -3
expect_rejected "--jobs non-numeric" "$ALGOPROF" "$WORK/ok.mj" --jobs x
expect_rejected "--jobs negative" "$ALGOPROF" "$WORK/ok.mj" --jobs -1
expect_rejected "--sample non-numeric" "$ALGOPROF" "$WORK/ok.mj" --sample x
expect_rejected "--sample negative" "$ALGOPROF" "$WORK/ok.mj" --sample -5
expect_rejected "--input stray char" "$ALGOPROF" "$WORK/ok.mj" --input 1,2x,3
expect_rejected "--input empty field" "$ALGOPROF" "$WORK/ok.mj" --input 1,,3
expect_rejected "--input overflow" "$ALGOPROF" "$WORK/ok.mj" \
  --input 99999999999999999999

# --dispatch: every valid tier runs; the output must be byte-identical
# to the default (the tiers differ only in speed); junk is rejected.
for tier in auto switch threaded threaded+fused threaded+fused+ic; do
  expect_ok "--dispatch $tier" "$ALGOPROF" "$WORK/ok.mj" \
    --input 5 --dispatch "$tier"
done
base=$("$ALGOPROF" "$WORK/ok.mj" --input 7 --format table 2>&1)
for tier in switch threaded+fused+ic; do
  tierout=$("$ALGOPROF" "$WORK/ok.mj" --input 7 --format table \
    --dispatch "$tier" 2>&1)
  [ "$base" = "$tierout" ] \
    || fail "--dispatch $tier output differs from default"
done
expect_rejected "--dispatch junk" "$ALGOPROF" "$WORK/ok.mj" --dispatch fast
expect_rejected "--dispatch empty" "$ALGOPROF" "$WORK/ok.mj" --dispatch ""

# Report-writer failures must be a failing exit with an error message,
# not exit 0 with the file silently missing.
out=$("$ALGOPROF" "$WORK/ok.mj" --format dot --out "$WORK/no_such_dir/t.dot" 2>&1)
rc=$?
if [ "$rc" -eq 0 ]; then
  fail "--format dot to unwritable path: expected non-zero exit"
elif ! printf '%s' "$out" | grep -q "cannot write"; then
  fail "--format dot to unwritable path: no error message: $out"
fi
out=$("$ALGOPROF" "$WORK/ok.mj" --format csv --out "$WORK/no_such_dir/t.csv" 2>&1)
rc=$?
if [ "$rc" -eq 0 ]; then
  fail "--format csv to unwritable path: expected non-zero exit"
fi

# Unified reporting: --format NAME [--out FILE] is the one rendering
# path.
expect_ok "--format csv to stdout" "$ALGOPROF" "$WORK/ok.mj" \
  --input 5 --format csv
expect_ok "--format csv --out" "$ALGOPROF" "$WORK/ok.mj" \
  --input 5 --format csv --out "$WORK/new.csv"
expect_ok "--format dot --out" "$ALGOPROF" "$WORK/ok.mj" \
  --input 5 --format dot --out "$WORK/new.dot"
[ -s "$WORK/new.dot" ] || fail "--format dot produced no file"

# The pre-registry --csv/--dot aliases are removed: rejected with an
# exit code and a message naming the replacement, and no file written.
for flag in csv dot; do
  out=$("$ALGOPROF" "$WORK/ok.mj" --input 5 "--$flag" "$WORK/legacy.$flag" 2>&1)
  rc=$?
  [ "$rc" -ne 0 ] || fail "--$flag: removed alias accepted (exit 0)"
  printf '%s' "$out" | grep -q "removed.*--format $flag" \
    || fail "--$flag: rejection does not name the replacement: $out"
  [ ! -e "$WORK/legacy.$flag" ] || fail "--$flag: removed alias wrote a file"
done

# Format/out validation.
expect_rejected "--format unknown" "$ALGOPROF" "$WORK/ok.mj" --format yaml
expect_rejected "--out without --format" "$ALGOPROF" "$WORK/ok.mj" \
  --out "$WORK/x"
expect_rejected "--out after satisfied job" "$ALGOPROF" "$WORK/ok.mj" \
  --format csv --out "$WORK/x" --out "$WORK/y"

# The stable JSON schema.
expect_ok "--format json --out" "$ALGOPROF" "$WORK/ok.mj" \
  --input 5 --format json --out "$WORK/p.json"
grep -q "algoprof-profile/2" "$WORK/p.json" \
  || fail "--format json missing schema marker"

# Observability exports: files written, failures surfaced as exit codes.
expect_ok "--trace and --metrics" "$ALGOPROF" "$WORK/ok.mj" --input 5 \
  --trace "$WORK/t.json" --metrics "$WORK/t.prom"
grep -q "traceEvents" "$WORK/t.json" || fail "--trace wrote no trace JSON"
grep -q "algoprof_counter_total" "$WORK/t.prom" \
  || fail "--metrics wrote no prometheus text"
out=$("$ALGOPROF" "$WORK/ok.mj" --trace "$WORK/no_such_dir/t.json" 2>&1)
rc=$?
if [ "$rc" -eq 0 ]; then
  fail "--trace to unwritable path: expected non-zero exit"
elif ! printf '%s' "$out" | grep -q "cannot write"; then
  fail "--trace to unwritable path: no error message: $out"
fi
out=$("$ALGOPROF" "$WORK/ok.mj" --metrics "$WORK/no_such_dir/t.prom" 2>&1)
[ $? -ne 0 ] || fail "--metrics to unwritable path: expected non-zero exit"

# Defined overflow semantics end-to-end: the division used to raise
# SIGFPE (exit 136); it must now complete as an ordinary run. The
# printed value itself is asserted in VmTest.DivRemOverflowBoundary.
out=$("$ALGOPROF" "$WORK/overflow_div.mj" 2>&1)
rc=$?
if [ "$rc" -ne 0 ]; then
  fail "INT64_MIN / -1 run failed (exit $rc): $out"
fi

# --corpus: batch profiling. Invalid specs are rejected with a
# diagnostic, the flag is mutually exclusive with a file argument and
# the single-profile report flags, and the report is byte-identical
# between the serial (--jobs 1) and work-stealing (--jobs 4) paths.
mkdir -p "$WORK/corpus" "$WORK/empty_dir"
cp "$WORK/ok.mj" "$WORK/corpus/a.mj"
cp "$WORK/ok.mj" "$WORK/corpus/b.mj"
expect_rejected "--corpus missing value" "$ALGOPROF" --corpus
expect_rejected "--corpus empty value" "$ALGOPROF" --corpus ""
expect_rejected "--corpus nonexistent dir" "$ALGOPROF" \
  --corpus "$WORK/no_such_dir"
expect_rejected "--corpus dir without .mj" "$ALGOPROF" \
  --corpus "$WORK/empty_dir"
expect_rejected "--corpus plus file arg" "$ALGOPROF" \
  --corpus builtin "$WORK/ok.mj"
expect_rejected "--corpus plus --format" "$ALGOPROF" \
  --corpus builtin --format csv
expect_rejected "--corpus plus --cct" "$ALGOPROF" --corpus builtin --cct
expect_rejected "--corpus with bad --jobs" "$ALGOPROF" \
  --corpus "$WORK/corpus" --jobs x

expect_ok "--corpus dir" "$ALGOPROF" --corpus "$WORK/corpus" --seeds 3,5
serial=$("$ALGOPROF" --corpus "$WORK/corpus" --seeds 3,5,7,9 --jobs 1 2>&1)
rc1=$?
stealing=$("$ALGOPROF" --corpus "$WORK/corpus" --seeds 3,5,7,9 --jobs 4 2>&1)
rc4=$?
[ "$rc1" -eq 0 ] || fail "--corpus --jobs 1 failed (exit $rc1): $serial"
[ "$rc4" -eq 0 ] || fail "--corpus --jobs 4 failed (exit $rc4): $stealing"
[ "$serial" = "$stealing" ] \
  || fail "--corpus report differs between --jobs 1 and --jobs 4"
printf '%s' "$serial" | grep -q "a.mj" \
  || fail "--corpus report does not list a.mj: $serial"

# Resilience options ride along per corpus job: a fault killing run 1
# of every program degrades (exit 0, quarantine column) under skip.
out=$("$ALGOPROF" --corpus "$WORK/corpus" --seeds 3,5,7 --jobs 2 \
  --policy skip --inject run-start-fail@run1 2>&1)
rc=$?
[ "$rc" -eq 0 ] || fail "--corpus degraded run: expected exit 0, got $rc"
printf '%s' "$out" | grep -q "degraded" \
  || fail "--corpus degraded run: no degraded status: $out"

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES cli test(s) failed" >&2
  exit 1
fi
echo "all cli tests passed"

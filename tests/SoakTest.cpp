//===- tests/SoakTest.cpp - Corpus soak under fault injection -------------===//
///
/// \file
/// Service-style soak coverage (ctest label `service`): thousands of
/// queued corpus run jobs pushed through one work-stealing pool with a
/// deterministic fault plan firing along the way — persistent heap-oom
/// faults that exhaust the retry budget and quarantine, plus transient
/// run-start faults that recover on retry. Asserts exact quarantine
/// accounting per program, the degraded-profile byte-equality guarantee
/// against a serial session over the surviving seeds, and the compile
/// cache's compile-once behavior.
///
//===----------------------------------------------------------------------===//

#include "SweepTestUtil.h"
#include "TestUtil.h"
#include "obs/Obs.h"
#include "parallel/CorpusRunner.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace algoprof;
using namespace algoprof::parallel;
using namespace algoprof::prof;
using namespace algoprof::programs;

namespace {

struct Sigs {
  std::string Profiles;
  std::string Tree;
  std::string Inputs;
  bool operator==(const Sigs &O) const {
    return Profiles == O.Profiles && Tree == O.Tree && Inputs == O.Inputs;
  }
};

Sigs serialSigs(const CompiledProgram &CP, const SessionOptions &SO,
                const std::vector<int64_t> &Seeds) {
  ProfileSession S(CP, SO);
  for (int64_t Seed : Seeds) {
    vm::IoChannels Io;
    Io.Input = {Seed};
    EXPECT_TRUE(S.run("Main", "main", Io).ok());
  }
  return {testutil::profileSignature(S.buildProfiles(), S.inputs()),
          testutil::treeSignature(S.tree()),
          testutil::inputsSignature(S.inputs())};
}

TEST(SoakTest, ThousandsOfFaultyCorpusJobsQuarantineExactly) {
  // 4 programs x 500 seeds = 2000 run jobs (plus retries) through one
  // pool at 8 workers. Per program (run indices restart at 0 for each):
  //  - heap-oom at every 31st run, persistent: both Retry attempts die,
  //    the run quarantines with Attempts == 2.
  //  - run-start-fail at every 47th run not also a 31st, transient
  //    (:once): the retry succeeds, so the run never reaches Failures.
  const std::vector<std::pair<const char *, std::string>> Sources = {
      {"sort_random", seededInsertionSortProgram(InputOrder::Random)},
      {"sort_sorted", seededInsertionSortProgram(InputOrder::Sorted)},
      {"sort_reversed", seededInsertionSortProgram(InputOrder::Reversed)},
      // Internal-sweep program (ignores the seed input); it allocates,
      // which is what the heap-oom faults need to have a target.
      {"sort_fixed", insertionSortProgram(12, 4, 1, InputOrder::Random)},
  };
  constexpr int RunsPerProgram = 500;

  SessionOptions SO;
  SO.Jobs = 8;
  SO.Policy = resilience::FailurePolicy::Retry;
  SO.MaxAttempts = 2;
  for (int64_t I = 0; I < RunsPerProgram; ++I)
    SO.Seeds.push_back(I % 13); // Small, cheap, varied run sizes.
  std::vector<int64_t> Survivors, Doomed;
  for (int64_t I = 0; I < RunsPerProgram; ++I)
    (I % 31 == 0 ? Doomed : Survivors).push_back(I);
  int Transient = 0;
  for (int64_t I = 0; I < RunsPerProgram; ++I) {
    if (I % 31 == 0) {
      SO.Faults.Faults.push_back(
          {resilience::FaultSite::HeapOom, I, "", false});
    } else if (I % 47 == 0) {
      SO.Faults.Faults.push_back(
          {resilience::FaultSite::RunStart, I, "", true});
      ++Transient;
    }
  }
  ASSERT_EQ(Doomed.size(), 17u);
  ASSERT_EQ(Transient, 10);

#if ALGOPROF_OBS_ENABLED
  obs::Snapshot Before = obs::snapshot();
#endif

  std::vector<CorpusEntry> Entries;
  for (const auto &[Name, Src] : Sources)
    Entries.push_back({Name, Src});
  CorpusRunner Runner(SO);
  CorpusResult Result = Runner.run(Entries, "Main", "main");

  ASSERT_EQ(Result.Programs.size(), Sources.size());
  EXPECT_EQ(Result.Cache.Compiles, Sources.size());
  EXPECT_EQ(Result.Cache.Hits, 0u);
  EXPECT_EQ(Result.Pool.totalExecuted(),
            Sources.size() * (1 + RunsPerProgram));

  for (const CorpusProgramResult &R : Result.Programs) {
    SCOPED_TRACE(R.Name);
    ASSERT_TRUE(R.Error.empty()) << R.Error;
    ASSERT_EQ(R.Sweep.Runs.size(), static_cast<size_t>(RunsPerProgram));
    EXPECT_TRUE(R.Sweep.usable());
    EXPECT_EQ(R.Sweep.MergedRuns,
              static_cast<int64_t>(Survivors.size()));
    // Quarantine accounting: exactly the heap-oom runs, each after two
    // attempts, in run order; the transient run-start faults recovered
    // and must not appear.
    ASSERT_EQ(R.Sweep.Failures.size(), Doomed.size());
    for (size_t I = 0; I < Doomed.size(); ++I) {
      const resilience::FailureInfo &FI = R.Sweep.Failures[I];
      EXPECT_EQ(FI.Run, Doomed[I]);
      EXPECT_EQ(FI.Attempts, 2);
      EXPECT_TRUE(FI.Quarantined);
      EXPECT_TRUE(FI.Injected);
      EXPECT_EQ(FI.Status, vm::RunStatus::BudgetExceeded);
    }
    // The degraded-profile guarantee at soak scale: byte-identical to a
    // serial session over exactly the surviving seeds.
    SessionOptions SerialSO;
    std::vector<int64_t> SurvivorSeeds;
    for (int64_t I : Survivors)
      SurvivorSeeds.push_back(I % 13);
    Sigs Want = serialSigs(*R.Program, SerialSO, SurvivorSeeds);
    ASSERT_FALSE(Want.Tree.empty());
    Sigs Got = {
        testutil::profileSignature(R.Engine->buildProfiles(),
                                   R.Engine->inputs()),
        testutil::treeSignature(R.Engine->tree()),
        testutil::inputsSignature(R.Engine->inputs())};
    ASSERT_EQ(Want.Profiles, Got.Profiles);
    ASSERT_EQ(Want.Tree, Got.Tree);
    ASSERT_EQ(Want.Inputs, Got.Inputs);
  }

#if ALGOPROF_OBS_ENABLED
  // Registry accounting across the whole soak (the pool folded its
  // workers' thread-local state before run() returned).
  obs::Snapshot Delta = obs::snapshot().deltaFrom(Before);
  auto Count = [&](obs::Counter C) {
    return Delta.Counters[static_cast<size_t>(C)];
  };
  EXPECT_EQ(Count(obs::Counter::JobsExecuted),
            Sources.size() * (1 + RunsPerProgram));
  EXPECT_EQ(Count(obs::Counter::RunsQuarantined),
            Sources.size() * Doomed.size());
  EXPECT_EQ(Count(obs::Counter::RunsRetried),
            Sources.size() * (Doomed.size() + Transient));
  EXPECT_EQ(Count(obs::Counter::ShardsMerged),
            Sources.size() * Survivors.size());
  EXPECT_EQ(Count(obs::Counter::CorpusCompiles), Sources.size());
#endif
}

TEST(SoakTest, CompileCacheSharesDuplicateSources) {
  // Two corpus entries with identical source: one compilation, one
  // cache hit, identical profiles out of both engines.
  std::string Src = seededInsertionSortProgram(InputOrder::Random);
  SessionOptions SO;
  SO.Jobs = 4;
  SO.Seeds = {2, 4, 6, 8};
  CorpusRunner Runner(SO);
  CorpusResult Result =
      Runner.run({{"a", Src}, {"b", Src}}, "Main", "main");
  ASSERT_EQ(Result.Programs.size(), 2u);
  EXPECT_EQ(Result.Cache.Compiles, 1u);
  EXPECT_EQ(Result.Cache.Hits, 1u);
  for (const CorpusProgramResult &R : Result.Programs) {
    ASSERT_TRUE(R.Error.empty());
    EXPECT_TRUE(R.Sweep.allOk());
  }
  EXPECT_EQ(Result.Programs[0].Program.get(),
            Result.Programs[1].Program.get());
  EXPECT_EQ(testutil::treeSignature(Result.Programs[0].Engine->tree()),
            testutil::treeSignature(Result.Programs[1].Engine->tree()));
}

TEST(SoakTest, CompileErrorIsIsolatedPerProgram) {
  // A broken program reports its diagnostics and fails alone; the rest
  // of the batch profiles normally.
  SessionOptions SO;
  SO.Jobs = 4;
  SO.Seeds = {2, 4};
  CorpusRunner Runner(SO);
  CorpusResult Result = Runner.run(
      {{"bad", "class Main { static void main() { this is not minij } }"},
       {"good", seededInsertionSortProgram(InputOrder::Random)}},
      "Main", "main");
  ASSERT_EQ(Result.Programs.size(), 2u);
  EXPECT_FALSE(Result.Programs[0].Error.empty());
  EXPECT_FALSE(Result.Programs[0].ok());
  EXPECT_EQ(Result.Programs[0].Engine, nullptr);
  ASSERT_TRUE(Result.Programs[1].Error.empty());
  EXPECT_TRUE(Result.Programs[1].Sweep.allOk());
  EXPECT_TRUE(Result.Programs[1].ok());
}

} // namespace

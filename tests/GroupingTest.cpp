//===- tests/GroupingTest.cpp - Algorithm grouping strategies -------------===//

#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

struct Profiled {
  std::unique_ptr<CompiledProgram> CP;
  std::unique_ptr<ProfileSession> Session;
};

Profiled profile(const std::string &Src) {
  Profiled P;
  P.CP = compile(Src);
  if (!P.CP)
    return P;
  P.Session = std::make_unique<ProfileSession>(*P.CP);
  vm::RunResult R = P.Session->run("Main", "main");
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return P;
}

const Algorithm *algorithmOf(const std::vector<Algorithm> &Algos,
                             const std::string &NodeName) {
  for (const Algorithm &A : Algos)
    for (const RepetitionNode *N : A.Nodes)
      if (N->Name == NodeName)
        return &A;
  return nullptr;
}

TEST(Grouping, SortNestFormsOneAlgorithm) {
  Profiled P = profile(programs::insertionSortProgram(
      40, 10, 2, programs::InputOrder::Random));
  std::vector<Algorithm> Algos = P.Session->algorithms();
  const Algorithm *Outer = algorithmOf(Algos, "List.sort loop#0");
  const Algorithm *Inner = algorithmOf(Algos, "List.sort loop#1");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Outer->Id, Inner->Id);
  EXPECT_EQ(Outer->Root->Name, "List.sort loop#0");
}

TEST(Grouping, HarnessLoopsStayDataStructureless) {
  Profiled P = profile(programs::insertionSortProgram(
      40, 10, 2, programs::InputOrder::Random));
  std::vector<Algorithm> Algos = P.Session->algorithms();
  const Algorithm *Sweep = algorithmOf(Algos, "Main.measure loop#0");
  const Algorithm *Reps = algorithmOf(Algos, "Main.measure loop#1");
  ASSERT_NE(Sweep, nullptr);
  ASSERT_NE(Reps, nullptr);
  EXPECT_NE(Sweep->Id, Reps->Id);
  EXPECT_TRUE(Sweep->InputIds.empty());
  EXPECT_TRUE(Reps->InputIds.empty());
  EXPECT_EQ(Sweep->Nodes.size(), 1u);
  EXPECT_EQ(Reps->Nodes.size(), 1u);
}

TEST(Grouping, SiblingsNeverGroup) {
  // constructRandom and sort share the input but are siblings.
  Profiled P = profile(programs::insertionSortProgram(
      40, 10, 2, programs::InputOrder::Random));
  std::vector<Algorithm> Algos = P.Session->algorithms();
  const Algorithm *Build = algorithmOf(Algos,
                                       "Main.constructRandom loop#0");
  const Algorithm *Sort = algorithmOf(Algos, "List.sort loop#0");
  ASSERT_NE(Build, nullptr);
  ASSERT_NE(Sort, nullptr);
  EXPECT_NE(Build->Id, Sort->Id);
}

TEST(Grouping, ArrayListAppendAndGrowGroup) {
  // Paper Fig. 4: the append loop and the grow loop form one algorithm.
  Profiled P = profile(programs::arrayListProgram(false, 48, 8));
  std::vector<Algorithm> Algos = P.Session->algorithms();
  const Algorithm *Append = algorithmOf(Algos,
                                        "Main.testForSize loop#0");
  const Algorithm *Grow = algorithmOf(Algos,
                                      "ArrayList.growIfFull loop#0");
  ASSERT_NE(Append, nullptr);
  ASSERT_NE(Grow, nullptr);
  EXPECT_EQ(Append->Id, Grow->Id);
  // The harness loop stays out.
  const Algorithm *Harness = algorithmOf(Algos, "Main.main loop#0");
  ASSERT_NE(Harness, nullptr);
  EXPECT_NE(Harness->Id, Append->Id);
}

TEST(Grouping, Listing5OuterLoopNotGroupedByDefault) {
  Profiled P = profile(programs::listing5Program(6, 6));
  std::vector<Algorithm> Algos =
      P.Session->algorithms(GroupingStrategy::CommonInput);
  const Algorithm *Outer = algorithmOf(Algos, "Main.fill loop#0");
  const Algorithm *Inner = algorithmOf(Algos, "Main.fill loop#1");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_NE(Outer->Id, Inner->Id);
  EXPECT_TRUE(Outer->InputIds.empty()); // Data-structure-less.
}

TEST(Grouping, Listing5DataflowExtensionGroups) {
  // The Sec. 5 future-work analysis repairs the nest.
  Profiled P = profile(programs::listing5Program(6, 6));
  std::vector<Algorithm> Algos =
      P.Session->algorithms(GroupingStrategy::CommonInputPlusDataflow);
  const Algorithm *Outer = algorithmOf(Algos, "Main.fill loop#0");
  const Algorithm *Inner = algorithmOf(Algos, "Main.fill loop#1");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Outer->Id, Inner->Id);
}

TEST(Grouping, SameMethodStrategyGroupsLexically) {
  Profiled P = profile(programs::listing5Program(6, 6));
  std::vector<Algorithm> Algos =
      P.Session->algorithms(GroupingStrategy::SameMethod);
  const Algorithm *Outer = algorithmOf(Algos, "Main.fill loop#0");
  const Algorithm *Inner = algorithmOf(Algos, "Main.fill loop#1");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Outer->Id, Inner->Id);
}

TEST(Grouping, EveryNodeInExactlyOneAlgorithm) {
  Profiled P = profile(programs::mergeSortProgram(
      40, 10, 2, programs::InputOrder::Random));
  std::vector<Algorithm> Algos = P.Session->algorithms();
  std::map<const RepetitionNode *, int> Seen;
  for (const Algorithm &A : Algos)
    for (const RepetitionNode *N : A.Nodes)
      ++Seen[N];
  int TreeNodes = P.Session->tree().numRepetitions();
  EXPECT_EQ(static_cast<int>(Seen.size()), TreeNodes);
  for (const auto &[N, Count] : Seen) {
    (void)N;
    EXPECT_EQ(Count, 1);
  }
}

TEST(Grouping, AlgorithmRootIsShallowestNode) {
  Profiled P = profile(programs::mergeSortProgram(
      40, 10, 2, programs::InputOrder::Random));
  for (const Algorithm &A : P.Session->algorithms()) {
    for (const RepetitionNode *N : A.Nodes)
      EXPECT_GE(N->depth(), A.Root->depth());
  }
}

TEST(Grouping, MergeSortRecursionAndLoopsGroup) {
  Profiled P = profile(programs::mergeSortProgram(
      60, 10, 2, programs::InputOrder::Random));
  std::vector<Algorithm> Algos = P.Session->algorithms();
  const Algorithm *Rec = algorithmOf(Algos,
                                     "MergeSort.sortList (recursion)");
  const Algorithm *Split = algorithmOf(Algos, "MergeSort.sortList loop#0");
  const Algorithm *Merge = algorithmOf(Algos, "MergeSort.merge loop#0");
  ASSERT_NE(Rec, nullptr);
  ASSERT_NE(Split, nullptr);
  ASSERT_NE(Merge, nullptr);
  EXPECT_EQ(Rec->Id, Split->Id);
  EXPECT_EQ(Rec->Id, Merge->Id);
}

} // namespace

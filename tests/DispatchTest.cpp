//===- tests/DispatchTest.cpp - Dispatch-tier differential tests ----------===//
///
/// \file
/// The ExecutionListener event vocabulary is the profiler's ABI, and
/// the VM now has three ways to execute it: the portable switch loop,
/// the direct-threaded loop, and the fused/inline-cached fast paths on
/// top of either. These tests lock all tiers to byte-identical
/// observable behavior — algorithm profiles, repetition trees, input
/// tables, CCTs, instruction counts, and trap/limit semantics — the
/// same way ParallelSweepTest locks serial vs sharded sweeps.
///
//===----------------------------------------------------------------------===//

#include "SweepTestUtil.h"
#include "TestUtil.h"
#include "cct/CctProfiler.h"
#include "programs/Programs.h"
#include "report/TreePrinter.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

/// One dispatch configuration under test.
struct Tier {
  const char *Name;
  vm::DispatchMode Dispatch;
  bool Superinstructions;
  bool InlineCaches;
};

/// The ablation ladder. "switch" is the reference interpreter: the
/// original one-instruction-at-a-time loop with no fast paths.
const Tier Tiers[] = {
    {"switch", vm::DispatchMode::Switch, false, false},
    {"threaded", vm::DispatchMode::Threaded, false, false},
    {"threaded+fused", vm::DispatchMode::Threaded, true, false},
    {"threaded+fused+ic", vm::DispatchMode::Threaded, true, true},
};

vm::RunOptions tierRun(const Tier &T, vm::RunOptions Base = {}) {
  Base.Dispatch = T.Dispatch;
  Base.Superinstructions = T.Superinstructions;
  Base.InlineCaches = T.InlineCaches;
  return Base;
}

struct Sigs {
  std::string Profiles;
  std::string Tree;
  std::string Inputs;
  uint64_t Instructions = 0;
};

/// Drives a serial profiling session over \p Runs under one tier and
/// renders the full observable state.
Sigs tierSigs(const CompiledProgram &CP, const Tier &T,
              const std::vector<std::vector<int64_t>> &Runs) {
  SessionOptions SO;
  SO.Run = tierRun(T);
  ProfileSession S(CP, SO);
  Sigs Out;
  for (const std::vector<int64_t> &In : Runs) {
    vm::IoChannels Io;
    Io.Input = In;
    vm::RunResult R = S.run("Main", "main", Io);
    EXPECT_TRUE(R.ok()) << T.Name << ": " << R.TrapMessage;
    Out.Instructions += R.InstrCount;
  }
  Out.Profiles = testutil::profileSignature(S.buildProfiles(), S.inputs());
  Out.Tree = testutil::treeSignature(S.tree());
  Out.Inputs = testutil::inputsSignature(S.inputs());
  return Out;
}

std::vector<std::vector<int64_t>> seedRuns(std::vector<int64_t> Seeds) {
  std::vector<std::vector<int64_t>> Runs;
  for (int64_t S : Seeds)
    Runs.push_back({S});
  return Runs;
}

/// Every tier must reproduce the reference tier's profiles down to the
/// byte — including InstrCount, which counts constituent instructions
/// even when a fused superinstruction executed them in one step.
void expectTiersAgree(const std::string &Src,
                      const std::vector<std::vector<int64_t>> &Runs) {
  auto CP = testutil::compile(Src);
  ASSERT_TRUE(CP);
  Sigs Ref = tierSigs(*CP, Tiers[0], Runs);
  ASSERT_FALSE(Ref.Tree.empty());
  for (size_t I = 1; I < std::size(Tiers); ++I) {
    Sigs S = tierSigs(*CP, Tiers[I], Runs);
    EXPECT_EQ(Ref.Profiles, S.Profiles) << Tiers[I].Name;
    EXPECT_EQ(Ref.Tree, S.Tree) << Tiers[I].Name;
    EXPECT_EQ(Ref.Inputs, S.Inputs) << Tiers[I].Name;
    EXPECT_EQ(Ref.Instructions, S.Instructions) << Tiers[I].Name;
  }
}

TEST(Dispatch, ThreadedAvailabilityIsConsistent) {
  // Whichever way the build went, the API must agree with itself and
  // an explicit Threaded request must still run (falling back to the
  // switch loop when the build lacks computed goto).
  auto CP = testutil::compile(programs::listing4Program(8));
  ASSERT_TRUE(CP);
  for (vm::DispatchMode M : {vm::DispatchMode::Auto, vm::DispatchMode::Switch,
                             vm::DispatchMode::Threaded}) {
    vm::RunOptions RO;
    RO.Dispatch = M;
    vm::RunResult R = runPlain(*CP, "Main", "main", nullptr, RO);
    EXPECT_TRUE(R.ok()) << vm::dispatchModeName(M) << ": " << R.TrapMessage;
  }
}

TEST(Dispatch, ProfilesByteIdenticalAcrossTiers) {
  using programs::InputOrder;
  expectTiersAgree(programs::seededInsertionSortProgram(InputOrder::Random),
                   seedRuns({0, 4, 8, 12, 16}));
  expectTiersAgree(
      programs::functionalSortProgram(24, 8, 1, InputOrder::Random), {{}});
  expectTiersAgree(programs::mergeSortProgram(24, 8, 1, InputOrder::Random),
                   {{}});
  expectTiersAgree(programs::arrayListProgram(true, 24, 8), {{}});
  expectTiersAgree(programs::bstProgram(32, 16), {{}});
  expectTiersAgree(programs::binarySearchProgram(64, 16), {{}});
  expectTiersAgree(programs::listing4Program(16), {{}});
}

TEST(Dispatch, CctIdenticalAcrossTiers) {
  // The CCT profiler subscribes to per-instruction events
  // (wantsInstructionEvents), so a fused cluster must replay its
  // constituents' onInstruction callbacks one pc at a time.
  auto CP = testutil::compile(
      programs::mergeSortProgram(24, 8, 1, programs::InputOrder::Random));
  ASSERT_TRUE(CP);
  std::string RefCct;
  uint64_t RefInstr = 0;
  for (const Tier &T : Tiers) {
    cct::CctProfiler Prof(*CP->Mod);
    vm::Interpreter Interp(CP->Prep);
    vm::InstrumentationPlan Plan = vm::InstrumentationPlan::all(*CP->Mod);
    vm::IoChannels Io;
    vm::RunResult R = Interp.run(CP->entryMethod("Main", "main"), &Prof,
                                 Plan, Io, tierRun(T));
    ASSERT_TRUE(R.ok()) << T.Name << ": " << R.TrapMessage;
    std::string Cct = report::renderCct(Prof);
    if (&T == &Tiers[0]) {
      RefCct = Cct;
      RefInstr = R.InstrCount;
      ASSERT_FALSE(RefCct.empty());
    } else {
      EXPECT_EQ(RefCct, Cct) << T.Name;
      EXPECT_EQ(RefInstr, R.InstrCount) << T.Name;
    }
  }
}

TEST(Dispatch, FuelExhaustionIdenticalAcrossTiers) {
  // Fuel must cut the run at the same instruction in every tier, even
  // when the boundary lands inside a fused cluster (the VM demotes to
  // unfused code just before exhaustion). Sweep a band of limits so
  // some land mid-cluster.
  auto CP = testutil::compile(
      programs::insertionSortProgram(16, 8, 1, programs::InputOrder::Random));
  ASSERT_TRUE(CP);
  for (uint64_t Fuel : {5u, 37u, 100u, 1000u, 4096u}) {
    vm::RunResult Ref;
    for (const Tier &T : Tiers) {
      vm::RunOptions RO = tierRun(T);
      RO.Fuel = Fuel;
      vm::IoChannels Io;
      vm::RunResult R = runPlain(*CP, "Main", "main", &Io, RO);
      if (&T == &Tiers[0]) {
        Ref = R;
        // The largest limit may let the program finish; the band must
        // contain genuine exhaustions (locked below for the smallest).
        if (Fuel <= 1000)
          EXPECT_EQ(Ref.Status, vm::RunStatus::FuelExhausted)
              << "fuel=" << Fuel;
      } else {
        EXPECT_EQ(Ref.Status, R.Status) << T.Name << " fuel=" << Fuel;
        EXPECT_EQ(Ref.InstrCount, R.InstrCount) << T.Name << " fuel=" << Fuel;
        EXPECT_EQ(Ref.TrapMessage, R.TrapMessage)
            << T.Name << " fuel=" << Fuel;
      }
    }
  }
}

/// Base + two overriding subclasses, receivers alternating per element:
/// the worst case for a monomorphic cache (every hit is followed by a
/// miss at the same site).
const char *PolymorphicSrc = R"(
  class Shape {
    int area(int x) { return x; }
  }
  class Square extends Shape {
    int area(int x) { return x * x; }
  }
  class Twice extends Shape {
    int area(int x) { return x + x; }
  }
  class Main {
    static void main() {
      Shape[] shapes = new Shape[3];
      shapes[0] = new Shape();
      shapes[1] = new Square();
      shapes[2] = new Twice();
      int i = 0;
      int acc = 0;
      while (i < 60) {
        Shape s = shapes[i - i / 3 * 3];
        acc = acc + s.area(i);
        i = i + 1;
      }
      print(acc);
    }
  }
)";

TEST(Dispatch, PolymorphicVirtualCallsIdenticalWithInlineCaches) {
  auto CP = testutil::compile(PolymorphicSrc);
  ASSERT_TRUE(CP);
  ASSERT_GT(CP->Prep.NumIcSlots, 0);
  std::vector<int64_t> RefOut;
  uint64_t RefInstr = 0;
  for (const Tier &T : Tiers) {
    vm::IoChannels Io;
    vm::RunResult R = runPlain(*CP, "Main", "main", &Io, tierRun(T));
    ASSERT_TRUE(R.ok()) << T.Name << ": " << R.TrapMessage;
    if (&T == &Tiers[0]) {
      RefOut = Io.Output;
      RefInstr = R.InstrCount;
      ASSERT_FALSE(RefOut.empty());
    } else {
      EXPECT_EQ(RefOut, Io.Output) << T.Name;
      EXPECT_EQ(RefInstr, R.InstrCount) << T.Name;
    }
  }
}

TEST(Dispatch, InlineCachesStayWarmAcrossRuns) {
  // Caches are per-Interpreter and survive reset(): a second run in
  // the same interpreter starts with every site warm and must still
  // produce identical output (the module is immutable, so a stale hit
  // is impossible by construction — this locks the accounting).
  auto CP = testutil::compile(PolymorphicSrc);
  ASSERT_TRUE(CP);
  SessionOptions SO;
  SO.Run = tierRun(Tiers[3]);
  ProfileSession Warm(*CP, SO);
  std::vector<std::string> Outputs;
  for (int Run = 0; Run < 3; ++Run) {
    vm::IoChannels Io;
    vm::RunResult R = Warm.run("Main", "main", Io);
    ASSERT_TRUE(R.ok()) << R.TrapMessage;
    std::string Joined;
    for (int64_t V : Io.Output)
      Joined += std::to_string(V) + ",";
    Outputs.push_back(Joined);
  }
  EXPECT_EQ(Outputs[0], Outputs[1]);
  EXPECT_EQ(Outputs[0], Outputs[2]);
}

TEST(Dispatch, NullReceiverTrapIdenticalAcrossTiers) {
  // The IC fast path must not bypass the null-receiver check.
  auto CP = testutil::compile(R"(
    class Shape {
      int area(int x) { return x; }
    }
    class Main {
      static void main() {
        Shape s = new Shape();
        int i = 0;
        while (i < 10) {
          print(s.area(i));
          if (i == 7) { s = null; }
          i = i + 1;
        }
      }
    }
  )");
  ASSERT_TRUE(CP);
  vm::RunResult Ref;
  std::vector<int64_t> RefOut;
  for (const Tier &T : Tiers) {
    vm::IoChannels Io;
    vm::RunResult R = runPlain(*CP, "Main", "main", &Io, tierRun(T));
    if (&T == &Tiers[0]) {
      Ref = R;
      RefOut = Io.Output;
      EXPECT_EQ(Ref.Status, vm::RunStatus::Trapped);
      EXPECT_NE(Ref.TrapMessage.find("null"), std::string::npos)
          << Ref.TrapMessage;
    } else {
      EXPECT_EQ(Ref.Status, R.Status) << T.Name;
      EXPECT_EQ(Ref.TrapMessage, R.TrapMessage) << T.Name;
      EXPECT_EQ(Ref.InstrCount, R.InstrCount) << T.Name;
      EXPECT_EQ(RefOut, Io.Output) << T.Name;
    }
  }
}

} // namespace

//===- tests/ClassificationTest.cpp - Algorithm classification ------------===//

#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

struct Profiled {
  std::unique_ptr<CompiledProgram> CP;
  std::unique_ptr<ProfileSession> Session;
  std::vector<AlgorithmProfile> Profiles;
};

Profiled profile(const std::string &Src,
                 std::vector<int64_t> Input = {}) {
  Profiled P;
  P.CP = compile(Src);
  if (!P.CP)
    return P;
  P.Session = std::make_unique<ProfileSession>(*P.CP);
  vm::IoChannels Io;
  Io.Input = std::move(Input);
  vm::RunResult R = P.Session->run("Main", "main", Io);
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  P.Profiles = P.Session->buildProfiles();
  return P;
}

const AlgorithmProfile *profileOf(const Profiled &P,
                                  const std::string &RootName) {
  for (const AlgorithmProfile &AP : P.Profiles)
    if (AP.Algo.Root->Name == RootName)
      return &AP;
  return nullptr;
}

TEST(Classification, TraversalReadOnly) {
  Profiled P = profile(R"(
    class Node { Node next; int v; }
    class Main {
      static void main() {
        Node list = null;
        for (int i = 0; i < 8; i++) {
          Node n = new Node();
          n.next = list;
          list = n;
        }
        int c = 0;
        Node cur = list;
        while (cur != null) { c++; cur = cur.next; }
        print(c);
      }
    }
  )");
  const AlgorithmProfile *Walk = profileOf(P, "Main.main loop#1");
  ASSERT_NE(Walk, nullptr);
  ASSERT_EQ(Walk->Class.Inputs.size(), 1u);
  EXPECT_EQ(Walk->Class.Inputs[0].Class, AlgorithmClass::Traversal);
  EXPECT_NE(Walk->Label.find("Traversal of a Node-based recursive "
                             "structure"),
            std::string::npos);
}

TEST(Classification, ModificationWritesNoAllocation) {
  // In-place list reversal: writes links, allocates nothing.
  Profiled P = profile(R"(
    class Node { Node next; }
    class Main {
      static void main() {
        Node list = null;
        for (int i = 0; i < 8; i++) {
          Node n = new Node();
          n.next = list;
          list = n;
        }
        Node prev = null;
        while (list != null) {
          Node nx = list.next;
          list.next = prev;
          prev = list;
          list = nx;
        }
        print(prev != null);
      }
    }
  )");
  const AlgorithmProfile *Rev = profileOf(P, "Main.main loop#1");
  ASSERT_NE(Rev, nullptr);
  ASSERT_EQ(Rev->Class.Inputs.size(), 1u);
  EXPECT_EQ(Rev->Class.Inputs[0].Class, AlgorithmClass::Modification);
}

TEST(Classification, ConstructionAllocates) {
  Profiled P = profile(R"(
    class Node { Node next; }
    class Main {
      static void main() {
        Node list = null;
        for (int i = 0; i < 8; i++) {
          Node n = new Node();
          n.next = list;
          list = n;
        }
        list = null;
      }
    }
  )");
  const AlgorithmProfile *Build = profileOf(P, "Main.main loop#0");
  ASSERT_NE(Build, nullptr);
  ASSERT_EQ(Build->Class.Inputs.size(), 1u);
  EXPECT_EQ(Build->Class.Inputs[0].Class, AlgorithmClass::Construction);
}

TEST(Classification, ConstructionBeatsModification) {
  // An algorithm that both allocates and rewrites links classifies as
  // Construction (mutual exclusion precedence, paper Sec. 2.8).
  Profiled P = profile(R"(
    class Node { Node next; }
    class Main {
      static void main() {
        Node list = null;
        for (int i = 0; i < 6; i++) {
          Node n = new Node();
          n.next = list;
          if (list != null) { list.next = list.next; }
          list = n;
        }
        list = null;
      }
    }
  )");
  const AlgorithmProfile *Build = profileOf(P, "Main.main loop#0");
  ASSERT_NE(Build, nullptr);
  EXPECT_EQ(Build->Class.Inputs[0].Class, AlgorithmClass::Construction);
}

TEST(Classification, InputOutputAlgorithm) {
  Profiled P = profile(programs::ioSumProgram(), {5, 6, 7});
  const AlgorithmProfile *Loop = profileOf(P, "Main.main loop#0");
  ASSERT_NE(Loop, nullptr);
  EXPECT_TRUE(Loop->Class.DoesInput);
  EXPECT_TRUE(Loop->Class.DoesOutput);
  EXPECT_TRUE(Loop->Class.dataStructureless());
  EXPECT_NE(Loop->Label.find("Input algorithm"), std::string::npos);
  EXPECT_NE(Loop->Label.find("Output algorithm"), std::string::npos);
}

TEST(Classification, DataStructurelessLabel) {
  Profiled P = profile(R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 10; i++) { s = s + i * i; }
        print(s);
      }
    }
  )");
  const AlgorithmProfile *Loop = profileOf(P, "Main.main loop#0");
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->Label, "Data-structure-less algorithm");
}

TEST(Classification, MutualExclusionPerStructure) {
  // One algorithm traverses structure A while constructing structure B:
  // classified per input (paper: exclusion is per data structure).
  Profiled P = profile(R"(
    class ANode { ANode next; int v; }
    class BNode { BNode next; int v; }
    class Main {
      static void main() {
        ANode a = null;
        for (int i = 0; i < 6; i++) {
          ANode n = new ANode();
          n.v = i;
          n.next = a;
          a = n;
        }
        BNode b = null;
        ANode cur = a;
        while (cur != null) {
          BNode m = new BNode();
          m.v = cur.v * 2;
          m.next = b;
          b = m;
          cur = cur.next;
        }
        print(b != null);
      }
    }
  )");
  const AlgorithmProfile *Translate = profileOf(P, "Main.main loop#1");
  ASSERT_NE(Translate, nullptr);
  ASSERT_EQ(Translate->Class.Inputs.size(), 2u);
  std::map<std::string, AlgorithmClass> ByLabel;
  for (const auto &PI : Translate->Class.Inputs)
    ByLabel[P.Session->inputs().info(PI.InputId).Label] = PI.Class;
  EXPECT_EQ(ByLabel["ANode-based recursive structure"],
            AlgorithmClass::Traversal);
  EXPECT_EQ(ByLabel["BNode-based recursive structure"],
            AlgorithmClass::Construction);
}

TEST(Classification, ArrayModificationVsConstruction) {
  // Filling a preallocated array inside the loop: Modification (the
  // allocation happened outside the repetition). The array-list append
  // algorithm allocates its backing arrays inside: Construction.
  Profiled P = profile(R"(
    class Main {
      static void main() {
        int[] a = new int[16];
        for (int i = 0; i < 16; i++) { a[i] = i + 1; }
        print(a[15]);
      }
    }
  )");
  const AlgorithmProfile *Fill = profileOf(P, "Main.main loop#0");
  ASSERT_NE(Fill, nullptr);
  ASSERT_EQ(Fill->Class.Inputs.size(), 1u);
  EXPECT_EQ(Fill->Class.Inputs[0].Class, AlgorithmClass::Modification);
}

TEST(Classification, ArrayListIsConstruction) {
  Profiled P;
  P.CP = compile(programs::arrayListProgram(false, 40, 8));
  ASSERT_TRUE(P.CP);
  P.Session = std::make_unique<ProfileSession>(*P.CP);
  ASSERT_TRUE(P.Session->run("Main", "main").ok());
  P.Profiles = P.Session->buildProfiles();
  const AlgorithmProfile *Append = profileOf(P, "Main.testForSize loop#0");
  ASSERT_NE(Append, nullptr);
  ASSERT_FALSE(Append->Class.Inputs.empty());
  EXPECT_EQ(Append->Class.Inputs[0].Class, AlgorithmClass::Construction);
}

} // namespace

//===- tests/CurveFitTest.cpp - Cost function fitting ---------------------===//

#include "fitting/CurveFit.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace algoprof;
using namespace algoprof::fit;
using namespace algoprof::prof;

namespace {

std::vector<SeriesPoint> synth(double (*F)(double), int MaxN = 200,
                               int Step = 10) {
  std::vector<SeriesPoint> S;
  for (int N = Step; N <= MaxN; N += Step)
    S.push_back({static_cast<double>(N), F(static_cast<double>(N))});
  return S;
}

TEST(CurveFit, ExactLinear) {
  FitResult R = fitBest(synth([](double N) { return 3 * N; }));
  ASSERT_TRUE(R.Valid);
  EXPECT_NEAR(R.growthExponent(), 1.0, 0.15);
  EXPECT_NEAR(R.Coefficient, 3.0, 0.2);
  EXPECT_NEAR(R.R2, 1.0, 1e-6);
}

TEST(CurveFit, ExactQuadratic) {
  FitResult R = fitBest(synth([](double N) { return 0.25 * N * N; }));
  ASSERT_TRUE(R.Valid);
  EXPECT_NEAR(R.growthExponent(), 2.0, 0.1);
  EXPECT_NEAR(R.Coefficient, 0.25, 0.05);
}

TEST(CurveFit, ExactCubic) {
  FitResult R = fitBest(synth([](double N) { return 2 * N * N * N; }));
  ASSERT_TRUE(R.Valid);
  EXPECT_NEAR(R.growthExponent(), 3.0, 0.1);
}

TEST(CurveFit, ExactNLogN) {
  FitResult R =
      fitBest(synth([](double N) { return 5 * N * std::log2(N); }));
  ASSERT_TRUE(R.Valid);
  // n*log n sits between linear and quadratic.
  EXPECT_GT(R.growthExponent(), 1.0);
  EXPECT_LT(R.growthExponent(), 1.5);
}

TEST(CurveFit, ExactConstant) {
  FitResult R = fitBest(synth([](double N) {
    (void)N;
    return 42.0;
  }));
  ASSERT_TRUE(R.Valid);
  EXPECT_NEAR(R.growthExponent(), 0.0, 0.1);
  EXPECT_NEAR(R.Coefficient, 42.0, 0.5);
}

TEST(CurveFit, NoisyQuadraticStillQuadratic) {
  // Deterministic pseudo-noise around 0.5*n^2.
  std::vector<SeriesPoint> S;
  for (int N = 10; N <= 300; N += 10) {
    double Noise = 1.0 + 0.08 * std::sin(N * 12.9898);
    S.push_back({static_cast<double>(N), 0.5 * N * N * Noise});
  }
  FitResult R = fitBest(S);
  ASSERT_TRUE(R.Valid);
  EXPECT_NEAR(R.growthExponent(), 2.0, 0.15);
  EXPECT_NEAR(R.Coefficient, 0.5, 0.1);
  EXPECT_GT(R.R2, 0.98);
}

TEST(CurveFit, PowerLawFractionalExponent) {
  // n^1.5 is not in the single-coefficient family; the power law must
  // win.
  FitResult R =
      fitBest(synth([](double N) { return 2 * std::pow(N, 1.5); }));
  ASSERT_TRUE(R.Valid);
  EXPECT_EQ(R.Kind, ModelKind::PowerLaw);
  EXPECT_NEAR(R.Exponent, 1.5, 0.05);
  EXPECT_NEAR(R.Coefficient, 2.0, 0.2);
}

TEST(CurveFit, DegenerateSeriesInvalid) {
  EXPECT_FALSE(fitBest({}).Valid);
  EXPECT_FALSE(fitBest({{1, 1}}).Valid);
  EXPECT_FALSE(fitBest({{1, 1}, {2, 2}}).Valid);
}

TEST(CurveFit, AllZeroSizesOnlyConstantSurvives) {
  std::vector<SeriesPoint> S = {{0, 5}, {0, 5}, {0, 5}, {0, 5}};
  FitResult R = fitBest(S);
  ASSERT_TRUE(R.Valid);
  EXPECT_EQ(R.Kind, ModelKind::Constant);
  EXPECT_NEAR(R.Coefficient, 5.0, 1e-9);
}

TEST(CurveFit, FitAllModelsSortedByBic) {
  std::vector<FitResult> Fits =
      fitAllModels(synth([](double N) { return N * N; }));
  ASSERT_GE(Fits.size(), 2u);
  for (size_t I = 1; I < Fits.size(); ++I)
    EXPECT_LE(Fits[I - 1].Bic, Fits[I].Bic);
}

TEST(CurveFit, FormulaRendering) {
  FitResult R = fitBest(synth([](double N) { return 0.25 * N * N; }));
  ASSERT_TRUE(R.Valid);
  // "0.25*n^2" modulo formatting of the coefficient.
  EXPECT_NE(R.formula().find("n^2"), std::string::npos);
  FitResult Invalid;
  EXPECT_EQ(Invalid.formula(), "<no fit>");
}

TEST(CurveFit, ZeroSizePointsHandledByPowerLaw) {
  // A series with x=0 points must not break the log-log fit.
  std::vector<SeriesPoint> S = synth([](double N) { return 2 * N; });
  S.insert(S.begin(), {0, 0});
  FitResult R = fitModel(S, ModelKind::PowerLaw);
  ASSERT_TRUE(R.Valid);
  EXPECT_NEAR(R.Exponent, 1.0, 0.05);
}

TEST(CurveFit, ExactFitBicIsFinite) {
  // On noiseless data the residual is exactly zero; M*log(MeanRss)
  // used to be -inf, which made every exact fit "tie" at -inf and left
  // the winner to sort order. The clamp keeps BIC finite.
  std::vector<FitResult> Fits =
      fitAllModels(synth([](double N) { return 3 * N; }));
  ASSERT_FALSE(Fits.empty());
  for (const FitResult &F : Fits)
    EXPECT_TRUE(std::isfinite(F.Bic)) << modelKindName(F.Kind);
}

TEST(CurveFit, ExactFitTieBreaksDeterministically) {
  // y = 5n fits Linear exactly and PowerLaw (b=1) exactly. With both
  // at the clamped BIC floor, the one-parameter model must win — and
  // keep winning if the candidate list is ever reordered.
  FitResult R = fitBest(synth([](double N) { return 5 * N; }));
  ASSERT_TRUE(R.Valid);
  EXPECT_EQ(R.Kind, ModelKind::Linear);
  EXPECT_EQ(R.NumParams, 1);

  // A constant series fits every single-parameter model with zero
  // residual (Constant a=7, Linear degenerates, ...); the simplest
  // family must be chosen, not the sort's incidental first.
  std::vector<SeriesPoint> Flat;
  for (int N = 1; N <= 8; ++N)
    Flat.push_back({static_cast<double>(N), 7.0});
  FitResult C = fitBest(Flat);
  ASSERT_TRUE(C.Valid);
  EXPECT_EQ(C.Kind, ModelKind::Constant);
}

TEST(CurveFit, LinearPreferredOverPowerLawOnLinearData) {
  // BIC penalizes the extra parameter; on exactly linear data the
  // one-parameter model should win or at worst tie in exponent.
  FitResult R = fitBest(synth([](double N) { return 7 * N; }));
  ASSERT_TRUE(R.Valid);
  EXPECT_NEAR(R.growthExponent(), 1.0, 0.1);
}

} // namespace

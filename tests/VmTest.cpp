//===- tests/VmTest.cpp - Interpreter semantics tests ---------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <limits>

using namespace algoprof;
using namespace algoprof::testutil;

namespace {

TEST(Vm, Arithmetic) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        print(2 + 3 * 4);
        print(10 - 7);
        print(17 / 5);
        print(17 % 5);
        print(-17 / 5);
        print(-(3));
        print(2 * -3);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{14, 3, 3, 2, -3, -3, -6}));
}

TEST(Vm, DivRemOverflowBoundary) {
  // INT64_MIN / -1 overflows the quotient; Java (and our bytecode spec,
  // see bc::Opcode::Div) defines it as INT64_MIN with remainder 0. This
  // used to die with SIGFPE on x86 (hardware #DE) instead of printing.
  auto Out = runOk(R"(
    class Main {
      static void main() {
        int min = -9223372036854775807 - 1;
        print(min / -1);
        print(min % -1);
        print(min / 1);
        print(min % 1);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{
                     std::numeric_limits<int64_t>::min(), 0,
                     std::numeric_limits<int64_t>::min(), 0}));
}

TEST(Vm, ArithmeticWrapsAroundLikeJava) {
  // Add/Sub/Mul/Neg are defined as two's-complement wraparound, not UB.
  auto Out = runOk(R"(
    class Main {
      static void main() {
        int max = 9223372036854775807;
        int min = -9223372036854775807 - 1;
        print(max + 1);
        print(min - 1);
        print(max * 2);
        print(-min);
        print(max + max);
        print(min * -1);
      }
    }
  )");
  int64_t Min = std::numeric_limits<int64_t>::min();
  int64_t Max = std::numeric_limits<int64_t>::max();
  EXPECT_EQ(Out, (std::vector<int64_t>{Min, Max, -2, Min, -2, Min}));
}

TEST(Vm, Comparisons) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        print(1 < 2);
        print(2 <= 2);
        print(3 > 4);
        print(4 >= 5);
        print(5 == 5);
        print(5 != 5);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{1, 1, 0, 0, 1, 0}));
}

TEST(Vm, ShortCircuit) {
  // The right operand must not evaluate when short-circuited: a trap in
  // it would abort the run.
  auto Out = runOk(R"(
    class Main {
      static boolean boom() {
        int[] a = null;
        return a[0] == 0;
      }
      static void main() {
        boolean f = false;
        print(f && boom());
        boolean t = true;
        print(t || boom());
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{0, 1}));
}

TEST(Vm, LocalsAndIncDec) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        int x = 5;
        print(x++);
        print(x);
        print(++x);
        print(x--);
        print(--x);
        print(x);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{5, 6, 7, 7, 5, 5}));
}

TEST(Vm, FieldIncDecAndAssignValue) {
  auto Out = runOk(R"(
    class Counter { int c; }
    class Main {
      static void main() {
        Counter k = new Counter();
        print(k.c++);
        print(++k.c);
        int v = (k.c = 10);
        print(v);
        print(k.c);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{0, 2, 10, 10}));
}

TEST(Vm, ArrayIncDecAndPostfixIndex) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        int[] a = new int[3];
        int i = 0;
        a[i++] = 7;
        print(a[0]);
        print(i);
        a[1]++;
        print(a[1]);
        print(a[1]--);
        print(a[1]);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{7, 1, 1, 1, 0}));
}

TEST(Vm, WhileForBreakContinue) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 10; i++) {
          if (i % 2 == 1) {
            continue;
          }
          if (i == 8) {
            break;
          }
          s = s + i;
        }
        print(s);
        int n = 3;
        while (n > 0) {
          n--;
        }
        print(n);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{12, 0}));
}

TEST(Vm, ObjectFieldsDefaultInitialized) {
  auto Out = runOk(R"(
    class P { int x; boolean b; P next; }
    class Main {
      static void main() {
        P p = new P();
        print(p.x);
        print(p.b);
        print(p.next == null);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{0, 0, 1}));
}

TEST(Vm, ConstructorRuns) {
  auto Out = runOk(R"(
    class P {
      int x;
      P(int x) { this.x = x * 2; }
    }
    class Main {
      static void main() {
        print(new P(21).x);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{42}));
}

TEST(Vm, VirtualDispatch) {
  auto Out = runOk(R"(
    class A { int tag() { return 1; } }
    class B extends A { int tag() { return 2; } }
    class C extends B { }
    class D extends A { int tag() { return 4; } }
    class Main {
      static void main() {
        A a = new A();
        A b = new B();
        A c = new C();
        A d = new D();
        print(a.tag());
        print(b.tag());
        print(c.tag());
        print(d.tag());
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{1, 2, 2, 4}));
}

TEST(Vm, InheritedFieldsShareLayout) {
  auto Out = runOk(R"(
    class A { int a; int ga() { return a; } }
    class B extends A { int b; }
    class Main {
      static void main() {
        B x = new B();
        x.a = 10;
        x.b = 20;
        print(x.ga());
        print(x.a + x.b);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{10, 30}));
}

TEST(Vm, StaticCalls) {
  auto Out = runOk(R"(
    class Util { static int twice(int x) { return x * 2; } }
    class Main {
      static int add(int a, int b) { return a + b; }
      static void main() {
        print(add(Util.twice(3), 4));
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{10}));
}

TEST(Vm, Recursion) {
  auto Out = runOk(R"(
    class Main {
      static int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
      }
      static void main() {
        print(fib(10));
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{55}));
}

TEST(Vm, MultiDimArrays) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        int[][] m = new int[2][3];
        m[1][2] = 42;
        print(m.length);
        print(m[0].length);
        print(m[1][2]);
        print(m[0][0]);
        int[][] jag = new int[2][];
        jag[0] = new int[5];
        print(jag[0].length);
        print(jag[1] == null);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{2, 3, 42, 0, 5, 1}));
}

TEST(Vm, ReferenceEquality) {
  auto Out = runOk(R"(
    class P { }
    class Main {
      static void main() {
        P a = new P();
        P b = new P();
        P c = a;
        print(a == b);
        print(a == c);
        print(a != b);
        print(a == null);
        print(null == null);
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{0, 1, 1, 0, 1}));
}

TEST(Vm, InputOutputChannels) {
  auto Out = runOk(R"(
    class Main {
      static void main() {
        int s = 0;
        while (hasInput()) {
          s = s + readInt();
        }
        print(s);
      }
    }
  )",
                   {1, 2, 3, 4});
  EXPECT_EQ(Out, (std::vector<int64_t>{10}));
}

TEST(Vm, TrapNullFieldAccess) {
  runTraps(R"(
    class P { P next; }
    class Main {
      static void main() {
        P p = null;
        p.next = null;
      }
    }
  )",
           "null dereference");
}

TEST(Vm, TrapNullArray) {
  runTraps(R"(
    class Main {
      static void main() {
        int[] a = null;
        a[0] = 1;
      }
    }
  )",
           "null array");
}

TEST(Vm, TrapIndexOutOfBounds) {
  runTraps(R"(
    class Main {
      static void main() {
        int[] a = new int[3];
        a[3] = 1;
      }
    }
  )",
           "out of bounds");
}

TEST(Vm, TrapNegativeIndex) {
  runTraps(R"(
    class Main {
      static void main() {
        int[] a = new int[3];
        print(a[-1]);
      }
    }
  )",
           "out of bounds");
}

TEST(Vm, TrapDivisionByZero) {
  runTraps(R"(
    class Main {
      static void main() {
        int z = 0;
        print(1 / z);
      }
    }
  )",
           "division by zero");
}

TEST(Vm, TrapRemainderByZero) {
  runTraps(R"(
    class Main {
      static void main() {
        int z = 0;
        print(1 % z);
      }
    }
  )",
           "division by zero");
}

TEST(Vm, TrapNegativeArrayLength) {
  runTraps(R"(
    class Main {
      static void main() {
        int n = -4;
        int[] a = new int[n];
      }
    }
  )",
           "negative array length");
}

TEST(Vm, TrapInputExhausted) {
  runTraps(R"(
    class Main {
      static void main() {
        print(readInt());
      }
    }
  )",
           "input exhausted");
}

TEST(Vm, TrapNullReceiver) {
  runTraps(R"(
    class P { void m() { } }
    class Main {
      static void main() {
        P p = null;
        p.m();
      }
    }
  )",
           "null receiver");
}

TEST(Vm, TrapStackOverflow) {
  auto CP = compile(R"(
    class Main {
      static int down(int n) { return down(n + 1); }
      static void main() { print(down(0)); }
    }
  )");
  ASSERT_TRUE(CP);
  vm::IoChannels Io;
  vm::RunOptions Opts;
  Opts.MaxFrames = 64;
  vm::RunResult R = prof::runPlain(*CP, "Main", "main", &Io, Opts);
  EXPECT_EQ(R.Status, vm::RunStatus::Trapped);
  EXPECT_NE(R.TrapMessage.find("stack overflow"), std::string::npos);
}

TEST(Vm, FuelExhaustion) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int x = 0;
        while (true) { x = x + 1; }
      }
    }
  )");
  ASSERT_TRUE(CP);
  vm::IoChannels Io;
  vm::RunOptions Opts;
  Opts.Fuel = 10'000;
  vm::RunResult R = prof::runPlain(*CP, "Main", "main", &Io, Opts);
  EXPECT_EQ(R.Status, vm::RunStatus::FuelExhausted);
  EXPECT_GE(R.InstrCount, 10'000u);
}

TEST(Vm, InstrCountDeterministic) {
  const char *Src = R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 100; i++) { s = s + i; }
        print(s);
      }
    }
  )";
  RunOutcome A = run(Src);
  RunOutcome B = run(Src);
  ASSERT_TRUE(A.Result.ok());
  EXPECT_EQ(A.Result.InstrCount, B.Result.InstrCount);
  EXPECT_EQ(A.Output, (std::vector<int64_t>{4950}));
}

} // namespace

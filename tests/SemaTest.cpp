//===- tests/SemaTest.cpp - Semantic analysis unit tests ------------------===//

#include "frontend/Parser.h"
#include "frontend/Sema.h"

#include <gtest/gtest.h>

using namespace algoprof;

namespace {

std::unique_ptr<Program> semaOk(const std::string &Src) {
  DiagnosticEngine Diags;
  auto P = parseMiniJ(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_TRUE(runSema(*P, Diags)) << Diags.str();
  return P;
}

std::string semaErr(const std::string &Src) {
  DiagnosticEngine Diags;
  auto P = parseMiniJ(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << "parse must succeed: " << Diags.str();
  EXPECT_FALSE(runSema(*P, Diags)) << "expected a sema error";
  return Diags.str();
}

TEST(Sema, InjectsObjectRoot) {
  auto P = semaOk("class A { }");
  const ClassDecl *Obj = P->findClass("Object");
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(P->findClass("A")->Super, Obj);
}

TEST(Sema, FieldLayoutWithInheritance) {
  auto P = semaOk(R"(
    class A { int a1; int a2; }
    class B extends A { int b1; }
  )");
  const ClassDecl *A = P->findClass("A");
  const ClassDecl *B = P->findClass("B");
  EXPECT_EQ(classLayoutSize(*A), 2);
  EXPECT_EQ(classLayoutSize(*B), 3);
  EXPECT_EQ(fieldLayoutSlot(*A, *A->findOwnField("a1")), 0);
  EXPECT_EQ(fieldLayoutSlot(*A, *A->findOwnField("a2")), 1);
  EXPECT_EQ(fieldLayoutSlot(*B, *B->findOwnField("b1")), 2);
}

TEST(Sema, SubclassRelation) {
  auto P = semaOk("class A { } class B extends A { } class C { }");
  EXPECT_TRUE(isSubclassOf(P->findClass("B"), P->findClass("A")));
  EXPECT_FALSE(isSubclassOf(P->findClass("A"), P->findClass("B")));
  EXPECT_FALSE(isSubclassOf(P->findClass("C"), P->findClass("A")));
}

TEST(Sema, LocalSlotsAndLoopIds) {
  auto P = semaOk(R"(
    class A {
      int f;
      void m(int p) {
        int x = p;
        while (x > 0) {
          int y = x;
          x = y - 1;
        }
        for (int i = 0; i < 3; i++) {
          x = x + i;
        }
      }
    }
  )");
  const MethodDecl *M = P->findClass("A")->findOwnMethod("m");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->NumLoops, 2);
  // this + p + x + y + i at minimum.
  EXPECT_GE(M->NumLocalSlots, 5);
}

TEST(Sema, NameResolutionPrecedence) {
  // A local shadows a field of the same name.
  auto P = semaOk(R"(
    class A {
      int v;
      int m(int v) { return v; }
      int n() { return v; }
    }
  )");
  (void)P;
}

TEST(Sema, ErrorUnknownType) {
  EXPECT_NE(semaErr("class A { Zorp z; }").find("unknown type"),
            std::string::npos);
}

TEST(Sema, ErrorUnknownSuper) {
  semaErr("class A extends Zorp { }");
}

TEST(Sema, ErrorInheritanceCycle) {
  semaErr("class A extends B { } class B extends A { }");
}

TEST(Sema, ErrorDuplicateClass) { semaErr("class A { } class A { }"); }

TEST(Sema, ErrorDuplicateField) { semaErr("class A { int x; int x; }"); }

TEST(Sema, ErrorShadowedInheritedField) {
  semaErr("class A { int x; } class B extends A { int x; }");
}

TEST(Sema, ErrorOverloading) {
  semaErr("class A { void m() { } void m(int x) { } }");
}

TEST(Sema, ErrorOverrideChangesArity) {
  semaErr(R"(
    class A { void m(int x) { } }
    class B extends A { void m() { } }
  )");
}

TEST(Sema, ErrorOverrideChangesReturnType) {
  semaErr(R"(
    class A { int m() { return 0; } }
    class B extends A { boolean m() { return true; } }
  )");
}

TEST(Sema, OverrideCompatibleOk) {
  semaOk(R"(
    class A { int m(int x) { return x; } }
    class B extends A { int m(int x) { return x + 1; } }
  )");
}

TEST(Sema, ErrorTypeMismatchAssignment) {
  semaErr("class A { static void m() { int x = true; } }");
}

TEST(Sema, ErrorConditionNotBoolean) {
  semaErr("class A { static void m() { if (1) { } } }");
}

TEST(Sema, ErrorArithmeticOnBool) {
  semaErr("class A { static void m() { int x = true + 1; } }");
}

TEST(Sema, ErrorCompareIntWithRef) {
  semaErr("class A { static void m(A a) { boolean b = a == 1; } }");
}

TEST(Sema, RefEqualityOk) {
  semaOk("class A { static boolean m(A a, A b) { return a == b; } }");
}

TEST(Sema, NullAssignableToRefsOnly) {
  semaOk("class A { static void m() { A a = null; int[] b = null; } }");
  semaErr("class A { static void m() { int x = null; } }");
}

TEST(Sema, ErasureAllowsObjectConversions) {
  semaOk(R"(
    class Box { }
    class A {
      static void m(Object o, Box b) {
        Object o2 = b;
        Box b2 = o;
      }
    }
  )");
}

TEST(Sema, SubtypeAssignmentOk) {
  semaOk(R"(
    class A { }
    class B extends A { }
    class C { static void m(B b) { A a = b; } }
  )");
}

TEST(Sema, ErrorSupertypeAssignment) {
  semaErr(R"(
    class A { }
    class B extends A { }
    class C { static void m(A a) { B b = a; } }
  )");
}

TEST(Sema, ErrorMissingReturn) {
  semaErr("class A { static int m(boolean c) { if (c) { return 1; } } }");
}

TEST(Sema, ReturnOnBothBranchesOk) {
  semaOk(R"(
    class A {
      static int m(boolean c) {
        if (c) { return 1; } else { return 2; }
      }
    }
  )");
}

TEST(Sema, ErrorReturnValueFromVoid) {
  semaErr("class A { static void m() { return 1; } }");
}

TEST(Sema, ErrorBreakOutsideLoop) {
  semaErr("class A { static void m() { break; } }");
}

TEST(Sema, ErrorThisInStatic) {
  semaErr("class A { int x; static int m() { return this.x; } }");
}

TEST(Sema, ErrorInstanceFieldFromStatic) {
  semaErr("class A { int x; static int m() { return x; } }");
}

TEST(Sema, ErrorInstanceMethodThroughClassName) {
  semaErr(R"(
    class A { void m() { } }
    class B { static void n() { A.m(); } }
  )");
}

TEST(Sema, ErrorStaticThroughInstance) {
  semaErr(R"(
    class A { static void m() { } }
    class B { static void n(A a) { a.m(); } }
  )");
}

TEST(Sema, BuiltinsTypecheck) {
  semaOk(R"(
    class A {
      static void m() {
        while (hasInput()) {
          print(readInt());
        }
        print(true);
      }
    }
  )");
  semaErr("class A { static void m() { print(); } }");
  semaErr("class A { static void m() { int x = readInt(1); } }");
  semaErr("class A { static void m(A a) { print(a); } }");
}

TEST(Sema, BuiltinShadowedByMethod) {
  // A user method named 'print' takes precedence for bare calls.
  semaOk(R"(
    class A {
      int print(int x) { return x; }
      int m() { return print(3); }
    }
  )");
}

TEST(Sema, ErrorCtorArgMismatch) {
  semaErr(R"(
    class B { B(int x) { } }
    class A { static void m() { B b = new B(); } }
  )");
}

TEST(Sema, ErrorTwoCtors) {
  semaErr("class A { A() { } A(int x) { } }");
}

TEST(Sema, ErrorArrayIndexNotInt) {
  semaErr("class A { static void m(int[] a) { int x = a[true]; } }");
}

TEST(Sema, ErrorIndexNonArray) {
  semaErr("class A { static void m(int x) { int y = x[0]; } }");
}

TEST(Sema, ArrayLengthIsInt) {
  semaOk("class A { static int m(int[] a) { return a.length; } }");
}

TEST(Sema, ErrorUnknownField) {
  semaErr("class A { static int m(A a) { return a.nope; } }");
}

TEST(Sema, ErrorExprStmtNoEffect) {
  semaErr("class A { static void m(int x) { x + 1; } }");
}

TEST(Sema, ErrorIncDecOnBool) {
  semaErr("class A { static void m(boolean b) { b++; } }");
}

TEST(Sema, ErrorRedeclarationSameScope) {
  semaErr("class A { static void m() { int x = 0; int x = 1; } }");
}

TEST(Sema, ShadowingInnerScopeOk) {
  semaOk(R"(
    class A {
      static void m() {
        int x = 0;
        while (x < 1) {
          int y = 2;
          x = x + y;
        }
        int y = 3;
        x = x + y;
      }
    }
  )");
}

TEST(Sema, ForInitScopesOverLoopOnly) {
  semaOk(R"(
    class A {
      static void m() {
        for (int i = 0; i < 3; i++) { }
        for (int i = 0; i < 3; i++) { }
      }
    }
  )");
}

} // namespace

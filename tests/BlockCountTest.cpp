//===- tests/BlockCountTest.cpp - Block-count baseline profiler -----------===//

#include "TestUtil.h"
#include "cct/BlockCountProfiler.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::cct;
using namespace algoprof::testutil;

namespace {

struct BlockRun {
  std::unique_ptr<prof::CompiledProgram> CP;
  std::unique_ptr<BlockCountProfiler> Profiler;
  vm::RunResult Result;
};

BlockRun runBlocks(const std::string &Src) {
  BlockRun R;
  R.CP = compile(Src);
  if (!R.CP)
    return R;
  R.Profiler = std::make_unique<BlockCountProfiler>(R.CP->Prep);
  vm::Interpreter Interp(R.CP->Prep);
  vm::InstrumentationPlan Plan = vm::InstrumentationPlan::all(*R.CP->Mod);
  vm::IoChannels Io;
  R.Result = Interp.run(R.CP->entryMethod("Main", "main"),
                        R.Profiler.get(), Plan, Io);
  return R;
}

TEST(BlockCount, StraightLineMethodCountsOncePerCall) {
  BlockRun R = runBlocks(R"(
    class Main {
      static int f(int x) { return x + 1; }
      static void main() {
        int s = 0;
        s = s + f(1);
        s = s + f(2);
        s = s + f(3);
        print(s);
      }
    }
  )");
  ASSERT_TRUE(R.Result.ok());
  int32_t F = R.CP->Mod->findMethodId("Main", "f");
  // f is one basic block, called three times.
  EXPECT_EQ(R.Profiler->blockCount(F), 3);
}

TEST(BlockCount, LoopIterationsScaleBlockCounts) {
  BlockRun R = runBlocks(R"(
    class Main {
      static int work(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) { s = s + i; }
        return s;
      }
      static void main() { print(work(50)); }
    }
  )");
  ASSERT_TRUE(R.Result.ok());
  int32_t Work = R.CP->Mod->findMethodId("Main", "work");
  // Header runs 51 times, body 50, plus entry/exit blocks: > 100.
  EXPECT_GT(R.Profiler->blockCount(Work), 100);
  EXPECT_LT(R.Profiler->blockCount(Work), 260);
}

TEST(BlockCount, PerBlockCountsSumToMethodCount) {
  BlockRun R = runBlocks(programs::insertionSortProgram(
      40, 10, 2, programs::InputOrder::Random));
  ASSERT_TRUE(R.Result.ok());
  for (const bc::MethodInfo &M : R.CP->Mod->Methods) {
    int64_t Sum = 0;
    for (int64_t N : R.Profiler->blockCounts(M.Id))
      Sum += N;
    EXPECT_EQ(Sum, R.Profiler->blockCount(M.Id)) << M.QualifiedName;
  }
}

TEST(BlockCount, ResetZeroesEverything) {
  BlockRun R = runBlocks(R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 9; i++) { s = s + i; }
        print(s);
      }
    }
  )");
  ASSERT_TRUE(R.Result.ok());
  EXPECT_GT(R.Profiler->totalBlocks(), 0);
  R.Profiler->reset();
  EXPECT_EQ(R.Profiler->totalBlocks(), 0);
}

TEST(BlockCount, SortBlockCountsAreQuadraticLikeSteps) {
  // The Goldsmith-style metric tracks the same asymptotics as
  // algorithmic steps on the running example.
  std::vector<prof::SeriesPoint> Series;
  for (int Size = 20; Size <= 120; Size += 20) {
    BlockRun R = runBlocks(programs::insertionSortProgram(
        Size + 1, std::max(Size, 1), 1, programs::InputOrder::Reversed));
    ASSERT_TRUE(R.Result.ok());
    int32_t Sort = R.CP->Mod->findMethodId("List", "sort");
    Series.push_back(
        {static_cast<double>(Size),
         static_cast<double>(R.Profiler->blockCount(Sort))});
  }
  fit::FitResult F = fit::fitBest(Series);
  ASSERT_TRUE(F.Valid);
  EXPECT_NEAR(F.growthExponent(), 2.0, 0.2) << F.formula();
}

} // namespace

//===- tests/ServiceTest.cpp - Daemon, protocol, and streaming tests ------===//
//
// The profiling-as-a-service layer end to end: wire codecs, daemon
// admission control (frame hygiene, quotas, session caps), streamed
// sessions whose final profile must be byte-identical to the serial
// CLI path, client-disconnect survival, the /metrics endpoint, the
// content-keyed CompileCache, and a 64-session concurrent soak with
// fault injection.
//
//===----------------------------------------------------------------------===//

#include "core/CompileCache.h"
#include "core/Session.h"
#include "programs/Programs.h"
#include "support/Diagnostics.h"
#include "report/Reporter.h"
#include "service/Client.h"
#include "service/Daemon.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace algoprof;
using namespace algoprof::service;

namespace {

/// A unique socket path per test: /tmp keeps it under the sun_path
/// limit regardless of how deep the build tree sits.
std::string testSocketPath() {
  static std::atomic<int> Counter{0};
  return "/tmp/algoprofd-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1)) + ".sock";
}

/// Connects a raw client socket; -1 on failure.
int rawConnect(const std::string &Path) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// The serial reference: exactly what the CLI renders for the same
/// program + options with --format json (ProfileDriver is the CLI's
/// one-true-path; the daemon's streamed profile must match its bytes).
std::string serialReferenceJson(const std::string &Source,
                                prof::SessionOptions SO) {
  DiagnosticEngine Diags;
  std::unique_ptr<prof::CompiledProgram> CP =
      prof::compileMiniJ(Source, Diags);
  EXPECT_TRUE(CP) << Diags.str();
  SO.Jobs = 1;
  prof::ProfileDriver Driver(*CP, SO);
  Driver.runAll("Main", "main");
  std::vector<prof::AlgorithmProfile> Profiles = Driver.buildProfiles();
  report::ReportInput RI{&Driver.tree(), &Driver.inputs(), &Profiles,
                         &Driver.failures()};
  return report::Registry::builtin().find("json")->render(RI);
}

const std::string &corpusSource(const std::string &Name) {
  for (const programs::CorpusProgram &P : programs::corpusPrograms())
    if (P.Name == Name)
      return P.Source;
  ADD_FAILURE() << "no corpus program " << Name;
  static std::string Empty;
  return Empty;
}

/// One HTTP GET against the daemon's metrics port; returns the whole
/// response (headers + body), empty on connect failure.
std::string httpGet(int Port, const std::string &Path) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return "";
  }
  std::string Req = "GET " + Path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)!::send(Fd, Req.data(), Req.size(), MSG_NOSIGNAL);
  std::string Resp;
  char Buf[4096];
  ssize_t R;
  while ((R = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Resp.append(Buf, static_cast<size_t>(R));
  ::close(Fd);
  return Resp;
}

struct DaemonFixture {
  DaemonOptions Opts;
  std::unique_ptr<Daemon> D;

  explicit DaemonFixture(DaemonOptions O = DaemonOptions()) {
    Opts = std::move(O);
    if (Opts.SocketPath.empty())
      Opts.SocketPath = testSocketPath();
    if (Opts.Workers == 0)
      Opts.Workers = 2;
    D = std::make_unique<Daemon>(Opts);
    std::string Err;
    EXPECT_TRUE(D->start(Err)) << Err;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Protocol codecs
//===----------------------------------------------------------------------===//

TEST(ServiceProtocol, FrameRoundtripOverSocketpair) {
  int Sv[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv));
  std::string Payload = "hello\n\0binary\xff ok";
  Payload += std::string(1, '\0');
  ASSERT_TRUE(sendFrame(Sv[0], FrameType::Profile, Payload));
  Frame F;
  ASSERT_EQ(ReadStatus::Ok, readFrame(Sv[1], F, 1 << 20));
  EXPECT_EQ(FrameType::Profile, F.Type);
  EXPECT_EQ(Payload, F.Payload);

  // Oversized: declared length above the cap, body never read.
  ASSERT_TRUE(sendFrame(Sv[0], FrameType::Job, std::string(64, 'x')));
  EXPECT_EQ(ReadStatus::Oversized, readFrame(Sv[1], F, 16));

  ::close(Sv[0]);
  ::close(Sv[1]);
}

TEST(ServiceProtocol, JobRequestRoundtrip) {
  JobRequest R;
  R.Source = "class Main { static void main() { } }\nwith=weird\nlines";
  R.Seeds = {4, 8, 12};
  R.Policy = resilience::FailurePolicy::Retry;
  R.MaxAttempts = 5;
  R.MaxHeapBytes = 1 << 20;
  R.RunDeadlineMs = 250;
  R.InjectSpec = "heap-oom@run1:once";
  R.EntryClass = "App";
  R.EntryMethod = "run";

  JobRequest P;
  std::string Err;
  ASSERT_TRUE(parseJobRequest(encodeJobRequest(R), P, Err)) << Err;
  EXPECT_EQ(R.Source, P.Source);
  EXPECT_EQ(R.Seeds, P.Seeds);
  EXPECT_EQ(R.Policy, P.Policy);
  EXPECT_EQ(R.MaxAttempts, P.MaxAttempts);
  EXPECT_EQ(R.MaxHeapBytes, P.MaxHeapBytes);
  EXPECT_EQ(R.RunDeadlineMs, P.RunDeadlineMs);
  EXPECT_EQ(R.InjectSpec, P.InjectSpec);
  EXPECT_EQ(R.EntryClass, P.EntryClass);
  EXPECT_EQ(R.EntryMethod, P.EntryMethod);

  JobRequest C;
  C.Corpus = "insertion_sort";
  C.Runs = 3;
  C.Input = {7, 9};
  ASSERT_TRUE(parseJobRequest(encodeJobRequest(C), P, Err)) << Err;
  EXPECT_EQ(C.Corpus, P.Corpus);
  EXPECT_EQ(C.Runs, P.Runs);
  EXPECT_EQ(C.Input, P.Input);
}

TEST(ServiceProtocol, JobRequestRejectsGarbage) {
  JobRequest P;
  std::string Err;
  // Wrong version, unknown key, bad ints, wrong source byte count,
  // neither corpus nor source, both corpus and source.
  for (const std::string &Bad : {
           std::string("algoprof-job/9\ncorpus=x\n"),
           std::string("algoprof-job/1\nwat=1\ncorpus=x\n"),
           std::string("algoprof-job/1\ncorpus=x\nruns=zero\n"),
           std::string("algoprof-job/1\nsource=10\nshort"),
           std::string("algoprof-job/1\nruns=2\n"),
           std::string("algoprof-job/1\ncorpus=x\nsource=2\nhi"),
       }) {
    EXPECT_FALSE(parseJobRequest(Bad, P, Err)) << Bad;
    EXPECT_FALSE(Err.empty());
  }
}

TEST(ServiceProtocol, ResponseCodecs) {
  AcceptedMsg A;
  A.Session = 42;
  A.Runs = 7;
  AcceptedMsg A2;
  ASSERT_TRUE(parseAccepted(encodeAccepted(A), A2));
  EXPECT_EQ(A.Session, A2.Session);
  EXPECT_EQ(A.Runs, A2.Runs);

  RunDeltaMsg M;
  M.Run = 3;
  M.Index = 3;
  M.Total = 8;
  M.Status = "budget";
  M.Budget = "heap_bytes";
  M.Attempts = 2;
  M.Quarantined = true;
  M.MergedRuns = 3;
  RunDeltaMsg M2;
  ASSERT_TRUE(parseRunDelta(encodeRunDelta(M), M2));
  EXPECT_EQ(M.Run, M2.Run);
  EXPECT_EQ(M.Status, M2.Status);
  EXPECT_EQ(M.Budget, M2.Budget);
  EXPECT_EQ(M.Attempts, M2.Attempts);
  EXPECT_EQ(M.Quarantined, M2.Quarantined);
  EXPECT_EQ(M.MergedRuns, M2.MergedRuns);

  DoneMsg D;
  D.Runs = 8;
  D.MergedRuns = 7;
  D.DegradedRuns = 1;
  DoneMsg D2;
  ASSERT_TRUE(parseDone(encodeDone(D), D2));
  EXPECT_EQ(D.MergedRuns, D2.MergedRuns);
  EXPECT_EQ(D.DegradedRuns, D2.DegradedRuns);

  ErrorMsg E;
  ASSERT_TRUE(parseError(
      encodeError(errc::CompileError, "line 3: bad\nline 4: worse"), E));
  EXPECT_EQ(errc::CompileError, E.Code);
  EXPECT_EQ("line 3: bad\nline 4: worse", E.Message);
}

//===----------------------------------------------------------------------===//
// CompileCache: content keying and error recovery
//===----------------------------------------------------------------------===//

TEST(ServiceCompileCache, ErrorThenFixedSourceRecompiles) {
  prof::CompileCache Cache;
  const std::string Broken = "class Main { static void main() { oops }";
  const std::string Fixed = corpusSource("insertion_sort");

  prof::CompileCache::Result R1 = Cache.get(Broken);
  EXPECT_FALSE(R1.ok());
  EXPECT_FALSE(R1.Error.empty());
  // Same content: the cached error is served, nothing recompiles.
  prof::CompileCache::Result R2 = Cache.get(Broken);
  EXPECT_FALSE(R2.ok());
  EXPECT_EQ(R1.Error, R2.Error);
  EXPECT_EQ(1u, Cache.stats().Compiles);
  EXPECT_EQ(1u, Cache.stats().Hits);

  // The fix is different content, so it can never collide with the
  // stale error — the old path-keyed cache would have returned the
  // error forever.
  prof::CompileCache::Result R3 = Cache.get(Fixed);
  EXPECT_TRUE(R3.ok()) << R3.Error;

  // invalidateErrors purges resolved failures only.
  EXPECT_EQ(1u, Cache.invalidateErrors());
  EXPECT_EQ(1u, Cache.stats().ErrorsInvalidated);
  prof::CompileCache::Result R4 = Cache.get(Broken);
  EXPECT_FALSE(R4.ok());
  EXPECT_EQ(3u, Cache.stats().Compiles); // Broken recompiled after purge.
  prof::CompileCache::Result R5 = Cache.get(Fixed);
  EXPECT_TRUE(R5.ok());
  EXPECT_EQ(R3.Program.get(), R5.Program.get()); // Success entry survived.
}

//===----------------------------------------------------------------------===//
// Streamed sessions: byte-identical profiles
//===----------------------------------------------------------------------===//

TEST(ServiceDaemon, StreamsCorpusSessionByteIdenticalToSerial) {
  DaemonFixture F;
  JobRequest Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8, 12, 16};

  StreamResult R;
  std::string Err;
  ASSERT_TRUE(runJob(F.Opts.SocketPath, Job, R, Err)) << Err;
  ASSERT_TRUE(R.ok()) << R.Error.Code << ": " << R.Error.Message;
  EXPECT_EQ(4u, R.Acceptance.Runs);

  // Deltas arrive strictly in run-index order, one per run.
  ASSERT_EQ(4u, R.Deltas.size());
  for (size_t I = 0; I < R.Deltas.size(); ++I) {
    EXPECT_EQ(static_cast<int64_t>(I), R.Deltas[I].Run);
    EXPECT_EQ("ok", R.Deltas[I].Status);
    EXPECT_EQ(4u, R.Deltas[I].Total);
    EXPECT_EQ(static_cast<int64_t>(I) + 1, R.Deltas[I].MergedRuns);
  }
  EXPECT_EQ(4u, R.Done.Runs);
  EXPECT_EQ(4u, R.Done.MergedRuns);
  EXPECT_EQ(0u, R.Done.DegradedRuns);

  prof::SessionOptions SO;
  SO.Seeds = Job.Seeds;
  EXPECT_EQ(serialReferenceJson(corpusSource(Job.Corpus), SO),
            R.ProfileJson);

  Daemon::Stats S = F.D->stats();
  EXPECT_EQ(1u, S.Accepted);
  EXPECT_EQ(1u, S.Completed);
  EXPECT_EQ(0u, S.Rejected);
  EXPECT_GT(S.BytesStreamed, R.ProfileJson.size());
}

TEST(ServiceDaemon, StreamsInlineSourceWithInjectedFaults) {
  DaemonFixture F;
  JobRequest Job;
  Job.Source = corpusSource("seeded_insertion_sort_reversed");
  Job.Seeds = {4, 8, 12, 16, 20};
  Job.Policy = resilience::FailurePolicy::Skip;
  Job.InjectSpec = "run-start-fail@run2";

  StreamResult R;
  std::string Err;
  ASSERT_TRUE(runJob(F.Opts.SocketPath, Job, R, Err)) << Err;
  ASSERT_TRUE(R.ok()) << R.Error.Code << ": " << R.Error.Message;
  ASSERT_EQ(5u, R.Deltas.size());
  EXPECT_EQ("trap", R.Deltas[2].Status);
  EXPECT_TRUE(R.Deltas[2].Quarantined);
  EXPECT_EQ(5u, R.Done.Runs);
  EXPECT_EQ(4u, R.Done.MergedRuns); // Exactly the quarantined run missing.
  EXPECT_EQ(1u, R.Done.DegradedRuns);

  prof::SessionOptions SO;
  SO.Seeds = Job.Seeds;
  SO.Policy = Job.Policy;
  std::string FErr;
  ASSERT_TRUE(
      resilience::FaultPlan::parse(Job.InjectSpec, SO.Faults, FErr));
  EXPECT_EQ(serialReferenceJson(Job.Source, SO), R.ProfileJson);
  EXPECT_NE(R.ProfileJson.find("\"degraded_runs\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Admission control and protocol edge cases
//===----------------------------------------------------------------------===//

namespace {

/// Sends raw bytes and expects an Error frame back with \p Code.
void expectRawError(const std::string &Socket, const std::string &Raw,
                    const std::string &Code) {
  Frame Reply;
  bool GotReply = false;
  std::string Err;
  ASSERT_TRUE(sendRaw(Socket, Raw, Reply, GotReply, Err)) << Err;
  ASSERT_TRUE(GotReply) << "daemon closed without an error frame";
  ASSERT_EQ(FrameType::Error, Reply.Type);
  ErrorMsg E;
  ASSERT_TRUE(parseError(Reply.Payload, E));
  EXPECT_EQ(Code, E.Code) << E.Message;
}

} // namespace

TEST(ServiceDaemon, RejectsMalformedAndTruncatedFrames) {
  DaemonOptions O;
  O.MaxFrameBytes = 4096;
  DaemonFixture F(std::move(O));

  // Unknown frame-type byte.
  std::string BadType = encodeFrame(FrameType::Job, "x");
  BadType[4] = 0x7f;
  expectRawError(F.Opts.SocketPath, BadType, errc::MalformedFrame);

  // Truncated header: three of five bytes, then EOF.
  expectRawError(F.Opts.SocketPath, std::string("\x00\x00\x01", 3),
                 errc::MalformedFrame);

  // Truncated payload: header promises 100 bytes, delivers 10.
  std::string Short = encodeFrame(FrameType::Job, std::string(100, 'y'));
  Short.resize(5 + 10);
  expectRawError(F.Opts.SocketPath, Short, errc::MalformedFrame);

  // Right framing, wrong frame type for an opening message.
  expectRawError(F.Opts.SocketPath, encodeFrame(FrameType::Done, ""),
                 errc::MalformedFrame);

  // Oversized: the declared length alone triggers rejection; the body
  // is never transmitted.
  std::string Huge = encodeFrame(FrameType::Job, "");
  Huge[0] = 0x01; // 16 MiB declared, nothing sent.
  expectRawError(F.Opts.SocketPath, Huge, errc::OversizedFrame);

  // A payload the codec rejects.
  expectRawError(F.Opts.SocketPath,
                 encodeFrame(FrameType::Job, "not-a-version\n"),
                 errc::BadRequest);
  expectRawError(
      F.Opts.SocketPath,
      encodeFrame(FrameType::Job, "algoprof-job/1\ncorpus=no_such\n"),
      errc::BadRequest);

  EXPECT_EQ(7u, F.D->stats().Rejected);
  EXPECT_EQ(0u, F.D->stats().Accepted);
}

TEST(ServiceDaemon, EnforcesSessionQuotas) {
  DaemonOptions O;
  O.Quota.MaxRuns = 4;
  O.Quota.MaxSourceBytes = 1 << 16;
  O.Quota.MaxHeapBytes = 1 << 20;
  O.Quota.MaxRunDeadlineMs = 10000;
  O.Quota.MaxAttempts = 3;
  DaemonFixture F(std::move(O));

  auto expectQuota = [&](const JobRequest &Job) {
    StreamResult R;
    std::string Err;
    ASSERT_TRUE(runJob(F.Opts.SocketPath, Job, R, Err)) << Err;
    ASSERT_TRUE(R.HaveError);
    EXPECT_EQ(errc::QuotaExceeded, R.Error.Code) << R.Error.Message;
  };

  JobRequest TooManyRuns;
  TooManyRuns.Corpus = "seeded_insertion_sort_random";
  TooManyRuns.Seeds = {1, 2, 3, 4, 5};
  expectQuota(TooManyRuns);

  JobRequest TooMuchHeap;
  TooMuchHeap.Corpus = "seeded_insertion_sort_random";
  TooMuchHeap.Seeds = {4};
  TooMuchHeap.MaxHeapBytes = (1 << 20) + 1;
  expectQuota(TooMuchHeap);

  JobRequest TooLongDeadline = TooMuchHeap;
  TooLongDeadline.MaxHeapBytes = 0;
  TooLongDeadline.RunDeadlineMs = 10001;
  expectQuota(TooLongDeadline);

  JobRequest TooManyAttempts = TooMuchHeap;
  TooManyAttempts.MaxHeapBytes = 0;
  TooManyAttempts.Policy = resilience::FailurePolicy::Retry;
  TooManyAttempts.MaxAttempts = 4;
  expectQuota(TooManyAttempts);

  JobRequest TooBigSource;
  TooBigSource.Source = std::string((1 << 16) + 1, 'x');
  TooBigSource.Seeds = {4};
  expectQuota(TooBigSource);

  // Within quota still works; the unlimited heap request was clamped
  // to the cap, which these tiny runs never hit.
  JobRequest Ok;
  Ok.Corpus = "seeded_insertion_sort_random";
  Ok.Seeds = {4, 8};
  StreamResult R;
  std::string Err;
  ASSERT_TRUE(runJob(F.Opts.SocketPath, Ok, R, Err)) << Err;
  EXPECT_TRUE(R.ok()) << R.Error.Code << ": " << R.Error.Message;
  EXPECT_EQ(5u, F.D->stats().Rejected);
  EXPECT_EQ(1u, F.D->stats().Completed);
}

TEST(ServiceDaemon, RejectsWhenSessionLimitReached) {
  DaemonOptions O;
  O.MaxSessions = 1;
  O.ReadTimeoutMs = 10000; // The idle holder must outlive the test.
  DaemonFixture F(std::move(O));

  // An idle connection occupies the only slot (admission is per
  // connection, before any byte is parsed).
  int Holder = rawConnect(F.Opts.SocketPath);
  ASSERT_GE(Holder, 0);

  JobRequest Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4};
  StreamResult R;
  std::string Err;
  ASSERT_TRUE(runJob(F.Opts.SocketPath, Job, R, Err)) << Err;
  ASSERT_TRUE(R.HaveError);
  EXPECT_EQ(errc::TooManySessions, R.Error.Code);

  // Freeing the slot re-admits. The daemon reaps finished sessions on
  // the accept path, so retry until the close has been observed.
  ::close(Holder);
  bool Admitted = false;
  for (int Try = 0; Try < 100 && !Admitted; ++Try) {
    ASSERT_TRUE(runJob(F.Opts.SocketPath, Job, R, Err)) << Err;
    if (R.ok())
      Admitted = true;
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(Admitted);
}

TEST(ServiceDaemon, CompileErrorsAreAnsweredAndNotPermanent) {
  DaemonFixture F;
  const std::string Broken = "class Main { static void main() { ";
  JobRequest Bad;
  Bad.Source = Broken;
  Bad.Seeds = {4};

  StreamResult R;
  std::string Err;
  ASSERT_TRUE(runJob(F.Opts.SocketPath, Bad, R, Err)) << Err;
  ASSERT_TRUE(R.HaveError);
  EXPECT_EQ(errc::CompileError, R.Error.Code);
  EXPECT_FALSE(R.Error.Message.empty());

  // The "fixed" resubmission is new content: it compiles and profiles
  // (under the old path-keyed error caching this returned the stale
  // diagnostics forever).
  JobRequest Fixed = Bad;
  Fixed.Source = corpusSource("seeded_insertion_sort_random");
  ASSERT_TRUE(runJob(F.Opts.SocketPath, Fixed, R, Err)) << Err;
  EXPECT_TRUE(R.ok()) << R.Error.Code << ": " << R.Error.Message;

  // And the same broken source again still answers (recompiled after
  // the daemon purged the error entry; behavior, not blowup).
  ASSERT_TRUE(runJob(F.Opts.SocketPath, Bad, R, Err)) << Err;
  ASSERT_TRUE(R.HaveError);
  EXPECT_EQ(errc::CompileError, R.Error.Code);
}

TEST(ServiceDaemon, SurvivesClientDisconnectMidStream) {
  DaemonFixture F;

  // By hand: send the job, read Accepted, vanish. The daemon keeps
  // running the session on the shared pool and completes it.
  JobRequest Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8, 12, 16, 20, 24};
  int Fd = rawConnect(F.Opts.SocketPath);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendFrame(Fd, FrameType::Job, encodeJobRequest(Job)));
  Frame A;
  ASSERT_EQ(ReadStatus::Ok, readFrame(Fd, A, 1 << 20));
  ASSERT_EQ(FrameType::Accepted, A.Type);
  ::close(Fd); // Gone mid-stream.

  // The abandoned session still completes (bounded wait).
  bool Completed = false;
  for (int Try = 0; Try < 500 && !Completed; ++Try) {
    if (F.D->stats().Completed >= 1)
      Completed = true;
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(Completed);

  // The pool is unaffected: a fresh session streams normally and its
  // profile still matches the serial reference byte for byte.
  StreamResult R;
  std::string Err;
  ASSERT_TRUE(runJob(F.Opts.SocketPath, Job, R, Err)) << Err;
  ASSERT_TRUE(R.ok()) << R.Error.Code << ": " << R.Error.Message;
  prof::SessionOptions SO;
  SO.Seeds = Job.Seeds;
  EXPECT_EQ(serialReferenceJson(corpusSource(Job.Corpus), SO),
            R.ProfileJson);
  EXPECT_EQ(2u, F.D->stats().Accepted);
  EXPECT_EQ(2u, F.D->stats().Completed);
}

//===----------------------------------------------------------------------===//
// /metrics
//===----------------------------------------------------------------------===//

TEST(ServiceDaemon, MetricsEndpointServesLiveRegistry) {
  DaemonOptions O;
  O.MetricsPort = 0; // Ephemeral.
  DaemonFixture F(std::move(O));
  ASSERT_GT(F.D->metricsPort(), 0);

  JobRequest Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8, 12};
  StreamResult R;
  std::string Err;
  ASSERT_TRUE(runJob(F.Opts.SocketPath, Job, R, Err)) << Err;
  ASSERT_TRUE(R.ok());

  // Scraped MID pool lifetime: the daemon's workers are alive and will
  // never retire, so nonzero worker counters here prove the per-job
  // obs::flushThisThread publication (the old exit-time-only folding
  // reported zeros until shutdown).
  std::string Resp = httpGet(F.D->metricsPort(), "/metrics");
  ASSERT_NE(Resp.find("200 OK"), std::string::npos) << Resp;
  EXPECT_NE(Resp.find("algoprof_counter_total{counter=\"sessions_"
                      "accepted\"}"),
            std::string::npos);
  // Counters are process-cumulative across tests in this binary, so
  // assert presence-and-nonzero, not exact values (exact accounting is
  // Daemon::stats()'s job, asserted everywhere above).
  EXPECT_EQ(Resp.find("algoprof_counter_total{counter=\"sessions_"
                      "completed\"} 0\n"),
            std::string::npos);
  EXPECT_EQ(Resp.find("algoprof_counter_total{counter=\"jobs_executed\"} "
                      "0\n"),
            std::string::npos);
  EXPECT_EQ(Resp.find("algoprof_counter_total{counter=\"bytes_streamed\"} "
                      "0\n"),
            std::string::npos);

  EXPECT_NE(httpGet(F.D->metricsPort(), "/nope").find("404"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Soak: 64 concurrent streamed sessions under fault injection
//===----------------------------------------------------------------------===//

TEST(ServiceDaemon, Soak64ConcurrentSessionsWithFaults) {
  DaemonOptions O;
  O.Workers = 4;
  O.MetricsPort = 0;
  DaemonFixture F(std::move(O));

  // Four program/option shapes, 16 sessions each. Shape 3 injects a
  // startup fault under the skip policy, so a quarter of all sessions
  // exercise quarantine accounting concurrently.
  struct Shape {
    std::string Corpus;
    std::vector<int64_t> Seeds;
    resilience::FailurePolicy Policy;
    std::string Inject;
    size_t Quarantined;
  };
  const std::vector<Shape> Shapes = {
      {"seeded_insertion_sort_random", {4, 8, 12, 16},
       resilience::FailurePolicy::Fail, "", 0},
      {"seeded_insertion_sort_sorted", {4, 8, 12},
       resilience::FailurePolicy::Fail, "", 0},
      {"seeded_insertion_sort_reversed", {4, 8, 12, 16, 20},
       resilience::FailurePolicy::Fail, "", 0},
      {"seeded_insertion_sort_random", {4, 8, 12, 16},
       resilience::FailurePolicy::Skip, "run-start-fail@run1", 1},
  };

  // References computed once per shape through the serial CLI path;
  // every concurrent streamed session must reproduce them exactly.
  std::vector<std::string> Reference(Shapes.size());
  for (size_t I = 0; I < Shapes.size(); ++I) {
    prof::SessionOptions SO;
    SO.Seeds = Shapes[I].Seeds;
    SO.Policy = Shapes[I].Policy;
    std::string FErr;
    ASSERT_TRUE(
        resilience::FaultPlan::parse(Shapes[I].Inject, SO.Faults, FErr));
    Reference[I] = serialReferenceJson(corpusSource(Shapes[I].Corpus), SO);
  }

  constexpr size_t NumSessions = 64;
  std::vector<std::string> Failures(NumSessions);
  std::vector<std::thread> Clients;
  Clients.reserve(NumSessions);
  for (size_t I = 0; I < NumSessions; ++I)
    Clients.emplace_back([&, I] {
      const Shape &Sh = Shapes[I % Shapes.size()];
      JobRequest Job;
      Job.Corpus = Sh.Corpus;
      Job.Seeds = Sh.Seeds;
      Job.Policy = Sh.Policy;
      Job.InjectSpec = Sh.Inject;
      StreamResult R;
      std::string Err;
      if (!runJob(F.Opts.SocketPath, Job, R, Err)) {
        Failures[I] = "transport: " + Err;
        return;
      }
      if (!R.ok()) {
        Failures[I] = R.Error.Code + ": " + R.Error.Message;
        return;
      }
      if (R.Deltas.size() != Sh.Seeds.size()) {
        Failures[I] = "expected " + std::to_string(Sh.Seeds.size()) +
                      " deltas, got " + std::to_string(R.Deltas.size());
        return;
      }
      size_t Quarantined = 0;
      for (size_t K = 0; K < R.Deltas.size(); ++K) {
        if (R.Deltas[K].Run != static_cast<int64_t>(K)) {
          Failures[I] = "deltas out of order";
          return;
        }
        Quarantined += R.Deltas[K].Quarantined ? 1 : 0;
      }
      // Exact quarantine accounting, per session, under concurrency.
      if (Quarantined != Sh.Quarantined ||
          R.Done.Runs != Sh.Seeds.size() ||
          R.Done.MergedRuns != Sh.Seeds.size() - Sh.Quarantined ||
          R.Done.DegradedRuns != Sh.Quarantined) {
        Failures[I] = "quarantine accounting off";
        return;
      }
      if (R.ProfileJson != Reference[I % Shapes.size()])
        Failures[I] = "profile diverged from the serial reference";
    });

  // A scrape while the soak is in flight must answer.
  std::string MidFlight = httpGet(F.D->metricsPort(), "/metrics");
  EXPECT_NE(MidFlight.find("200 OK"), std::string::npos);

  for (std::thread &T : Clients)
    T.join();
  for (size_t I = 0; I < NumSessions; ++I)
    EXPECT_TRUE(Failures[I].empty()) << "session " << I << ": "
                                     << Failures[I];

  Daemon::Stats S = F.D->stats();
  EXPECT_EQ(NumSessions, S.Accepted);
  EXPECT_EQ(NumSessions, S.Completed);
  EXPECT_EQ(0u, S.Rejected);

  std::string Final = httpGet(F.D->metricsPort(), "/metrics");
  EXPECT_NE(Final.find("200 OK"), std::string::npos);
  EXPECT_NE(Final.find("sessions_completed"), std::string::npos);
}

//===- tests/ServiceTest.cpp - Daemon, protocol, and streaming tests ------===//
//
// The profiling-as-a-service layer end to end: wire codecs (v1 and
// v2), daemon admission control (frame hygiene, quotas, session caps,
// TCP auth), streamed sessions whose final profile must be
// byte-identical to the serial CLI path, v2 delta content (incremental
// tree repetitions, refreshed fits), slow-client backpressure, the
// durable job journal with replay and resume, client-disconnect
// survival, the /metrics endpoint, the content-keyed CompileCache, and
// a 64-session concurrent soak with fault injection.
//
//===----------------------------------------------------------------------===//

#include "core/CompileCache.h"
#include "core/Session.h"
#include "programs/Programs.h"
#include "support/Diagnostics.h"
#include "report/Reporter.h"
#include "service/Client.h"
#include "service/Daemon.h"
#include "service/Journal.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace algoprof;
using namespace algoprof::service;

namespace {

/// A unique socket path per test: /tmp keeps it under the sun_path
/// limit regardless of how deep the build tree sits.
std::string testSocketPath() {
  static std::atomic<int> Counter{0};
  return "/tmp/algoprofd-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1)) + ".sock";
}

/// A unique scratch file (journal, token) per call, removed by callers.
std::string testScratchPath(const char *Tag) {
  static std::atomic<int> Counter{0};
  return std::string("/tmp/algoprofd-test-") + Tag + "-" +
         std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1));
}

void writeFile(const std::string &Path, const std::string &Data) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(Out.is_open()) << Path;
  Out << Data;
}

/// Connects a raw client socket; -1 on failure.
int rawConnect(const std::string &Path) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// One job over the typed API against a Unix-socket daemon.
TypedResult runTyped(const std::string &SocketPath, const JobSpec &Job) {
  return Client::unixSocket(SocketPath).submit(Job).wait();
}

/// The serial reference: exactly what the CLI renders for the same
/// program + options with --format json (ProfileDriver is the CLI's
/// one-true-path; the daemon's streamed profile must match its bytes).
std::string serialReferenceJson(const std::string &Source,
                                prof::SessionOptions SO) {
  DiagnosticEngine Diags;
  std::unique_ptr<prof::CompiledProgram> CP =
      prof::compileMiniJ(Source, Diags);
  EXPECT_TRUE(CP) << Diags.str();
  SO.Jobs = 1;
  prof::ProfileDriver Driver(*CP, SO);
  Driver.runAll("Main", "main");
  std::vector<prof::AlgorithmProfile> Profiles = Driver.buildProfiles();
  report::ReportInput RI{&Driver.tree(), &Driver.inputs(), &Profiles,
                         &Driver.failures()};
  return report::Registry::builtin().find("json")->render(RI);
}

const std::string &corpusSource(const std::string &Name) {
  for (const programs::CorpusProgram &P : programs::corpusPrograms())
    if (P.Name == Name)
      return P.Source;
  ADD_FAILURE() << "no corpus program " << Name;
  static std::string Empty;
  return Empty;
}

/// One HTTP GET against the daemon's metrics port; returns the whole
/// response (headers + body), empty on connect failure.
std::string httpGet(int Port, const std::string &Path) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return "";
  }
  std::string Req = "GET " + Path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)!::send(Fd, Req.data(), Req.size(), MSG_NOSIGNAL);
  std::string Resp;
  char Buf[4096];
  ssize_t R;
  while ((R = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Resp.append(Buf, static_cast<size_t>(R));
  ::close(Fd);
  return Resp;
}

struct DaemonFixture {
  DaemonOptions Opts;
  std::unique_ptr<Daemon> D;

  explicit DaemonFixture(DaemonOptions O = DaemonOptions()) {
    Opts = std::move(O);
    if (Opts.SocketPath.empty())
      Opts.SocketPath = testSocketPath();
    if (Opts.Workers == 0)
      Opts.Workers = 2;
    D = std::make_unique<Daemon>(Opts);
    std::string Err;
    EXPECT_TRUE(D->start(Err)) << Err;
  }
};

/// Polls \p Pred (a daemon-stats condition) with a bounded wait.
bool pollFor(const std::function<bool()> &Pred, int TimeoutMs = 20000) {
  for (int Waited = 0; Waited < TimeoutMs; Waited += 10) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Pred();
}

} // namespace

//===----------------------------------------------------------------------===//
// Protocol codecs
//===----------------------------------------------------------------------===//

TEST(ServiceProtocol, FrameRoundtripOverSocketpair) {
  int Sv[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv));
  std::string Payload = "hello\n\0binary\xff ok";
  Payload += std::string(1, '\0');
  ASSERT_TRUE(sendFrame(Sv[0], FrameType::Profile, Payload));
  Frame F;
  ASSERT_EQ(ReadStatus::Ok, readFrame(Sv[1], F, 1 << 20));
  EXPECT_EQ(FrameType::Profile, F.Type);
  EXPECT_EQ(Payload, F.Payload);

  // Oversized: declared length above the cap, body never read.
  ASSERT_TRUE(sendFrame(Sv[0], FrameType::Job, std::string(64, 'x')));
  EXPECT_EQ(ReadStatus::Oversized, readFrame(Sv[1], F, 16));

  ::close(Sv[0]);
  ::close(Sv[1]);
}

TEST(ServiceProtocol, JobRequestRoundtrip) {
  JobRequest R;
  R.Source = "class Main { static void main() { } }\nwith=weird\nlines";
  R.Seeds = {4, 8, 12};
  R.Policy = resilience::FailurePolicy::Retry;
  R.MaxAttempts = 5;
  R.MaxHeapBytes = 1 << 20;
  R.RunDeadlineMs = 250;
  R.InjectSpec = "heap-oom@run1:once";
  R.EntryClass = "App";
  R.EntryMethod = "run";
  R.Auth = "s3kr1t-token";

  JobRequest P;
  std::string Err;
  ASSERT_TRUE(parseJobRequest(encodeJobRequest(R), P, Err)) << Err;
  EXPECT_EQ(2, P.Protocol); // The default speaks algoprof-wire/2.
  EXPECT_EQ(R.Source, P.Source);
  EXPECT_EQ(R.Seeds, P.Seeds);
  EXPECT_EQ(R.Policy, P.Policy);
  EXPECT_EQ(R.MaxAttempts, P.MaxAttempts);
  EXPECT_EQ(R.MaxHeapBytes, P.MaxHeapBytes);
  EXPECT_EQ(R.RunDeadlineMs, P.RunDeadlineMs);
  EXPECT_EQ(R.InjectSpec, P.InjectSpec);
  EXPECT_EQ(R.EntryClass, P.EntryClass);
  EXPECT_EQ(R.EntryMethod, P.EntryMethod);
  EXPECT_EQ(R.Auth, P.Auth);

  // Legacy v1 encodes the old version line and still parses.
  JobRequest C;
  C.Protocol = 1;
  C.Corpus = "insertion_sort";
  C.Runs = 3;
  C.Input = {7, 9};
  std::string Wire = encodeJobRequest(C);
  EXPECT_EQ(0u, Wire.find("algoprof-job/1\n"));
  ASSERT_TRUE(parseJobRequest(Wire, P, Err)) << Err;
  EXPECT_EQ(1, P.Protocol);
  EXPECT_EQ(C.Corpus, P.Corpus);
  EXPECT_EQ(C.Runs, P.Runs);
  EXPECT_EQ(C.Input, P.Input);

  // Resume jobs carry no program at all.
  JobRequest Rs;
  Rs.Resume = 17;
  ASSERT_TRUE(parseJobRequest(encodeJobRequest(Rs), P, Err)) << Err;
  EXPECT_EQ(17u, P.Resume);
  EXPECT_TRUE(P.Corpus.empty());
}

TEST(ServiceProtocol, JobRequestRejectsGarbage) {
  JobRequest P;
  std::string Err;
  // Wrong version, unknown key, bad ints, wrong source byte count,
  // neither corpus nor source nor resume, conflicting goals, resume on
  // the legacy protocol, zero resume id.
  for (const std::string &Bad : {
           std::string("algoprof-job/9\ncorpus=x\n"),
           std::string("algoprof-job/1\nwat=1\ncorpus=x\n"),
           std::string("algoprof-job/1\ncorpus=x\nruns=zero\n"),
           std::string("algoprof-job/1\nsource=10\nshort"),
           std::string("algoprof-job/1\nruns=2\n"),
           std::string("algoprof-job/1\ncorpus=x\nsource=2\nhi"),
           std::string("algoprof-wire/2\ncorpus=x\nresume=1\n"),
           std::string("algoprof-job/1\nresume=1\n"),
           std::string("algoprof-wire/2\nresume=0\n"),
       }) {
    EXPECT_FALSE(parseJobRequest(Bad, P, Err)) << Bad;
    EXPECT_FALSE(Err.empty());
  }

  // An unknown version's rejection names what IS supported, so old
  // daemons fail future clients diagnosably.
  EXPECT_FALSE(parseJobRequest("algoprof-wire/3\ncorpus=x\n", P, Err));
  EXPECT_NE(Err.find("algoprof-wire/2"), std::string::npos) << Err;
  EXPECT_NE(Err.find("algoprof-job/1"), std::string::npos) << Err;
}

TEST(ServiceProtocol, ResponseCodecs) {
  AcceptedMsg A;
  A.Session = 42;
  A.Runs = 7;
  A.Proto = 2;
  A.Resumed = true;
  AcceptedMsg A2;
  ASSERT_TRUE(parseAccepted(encodeAccepted(A), A2));
  EXPECT_EQ(A.Session, A2.Session);
  EXPECT_EQ(A.Runs, A2.Runs);
  EXPECT_EQ(A.Proto, A2.Proto);
  EXPECT_EQ(A.Resumed, A2.Resumed);

  RunDeltaMsg M;
  M.Run = 3;
  M.Index = 3;
  M.Total = 8;
  M.Status = "budget";
  M.Budget = "heap_bytes";
  M.Attempts = 2;
  M.Quarantined = true;
  M.MergedRuns = 3;
  RunDeltaMsg M2;
  ASSERT_TRUE(parseRunDelta(encodeRunDelta(M), M2));
  EXPECT_EQ(M.Run, M2.Run);
  EXPECT_EQ(M.Status, M2.Status);
  EXPECT_EQ(M.Budget, M2.Budget);
  EXPECT_EQ(M.Attempts, M2.Attempts);
  EXPECT_EQ(M.Quarantined, M2.Quarantined);
  EXPECT_EQ(M.MergedRuns, M2.MergedRuns);
  EXPECT_FALSE(M2.V2); // No v2 lines emitted, none parsed.

  // v2 deltas add tree counts and fit estimates.
  M.V2 = true;
  M.TreeRepetitions = 123;
  M.NewRepetitions = 45;
  M.Fits = {{"sort", "0.25*n^2"}, {"scan", "2.0*n"}};
  ASSERT_TRUE(parseRunDelta(encodeRunDelta(M), M2));
  EXPECT_TRUE(M2.V2);
  EXPECT_EQ(M.TreeRepetitions, M2.TreeRepetitions);
  EXPECT_EQ(M.NewRepetitions, M2.NewRepetitions);
  ASSERT_EQ(2u, M2.Fits.size());
  EXPECT_EQ("sort", M2.Fits[0].Label);
  EXPECT_EQ("0.25*n^2", M2.Fits[0].Formula);
  EXPECT_EQ("scan", M2.Fits[1].Label);
  EXPECT_EQ("2.0*n", M2.Fits[1].Formula);

  DoneMsg D;
  D.Runs = 8;
  D.MergedRuns = 7;
  D.DegradedRuns = 1;
  DoneMsg D2;
  ASSERT_TRUE(parseDone(encodeDone(D), D2));
  EXPECT_EQ(D.MergedRuns, D2.MergedRuns);
  EXPECT_EQ(D.DegradedRuns, D2.DegradedRuns);

  ErrorMsg E;
  ASSERT_TRUE(parseError(
      encodeError(errc::CompileError, "line 3: bad\nline 4: worse"), E));
  EXPECT_EQ(errc::CompileError, E.Code);
  EXPECT_EQ("line 3: bad\nline 4: worse", E.Message);
}

//===----------------------------------------------------------------------===//
// Journal: load/append roundtrip and crash tolerance
//===----------------------------------------------------------------------===//

TEST(ServiceJournal, AppendLoadRoundtripAndTruncatedTail) {
  std::string Path = testScratchPath("journal");
  JobRequest Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8};
  const std::string P1 = encodeJobRequest(Job);
  Job.Seeds = {4, 8, 12};
  const std::string P2 = encodeJobRequest(Job);

  {
    Journal J;
    std::string Err;
    ASSERT_TRUE(J.open(Path, Err)) << Err;
    ASSERT_TRUE(J.appendAccepted(1, P1));
    ASSERT_TRUE(J.appendAccepted(2, P2));
    ASSERT_TRUE(J.appendCompleted(1));
  }

  Journal::LoadResult L;
  std::string Err;
  ASSERT_TRUE(Journal::load(Path, L, Err)) << Err;
  EXPECT_EQ(2u, L.MaxId);
  ASSERT_EQ(1u, L.Pending.size()); // 1 completed, only 2 pending.
  EXPECT_EQ(2u, L.Pending[0].Id);
  EXPECT_EQ(P2, L.Pending[0].Payload);

  // A crash mid-append can only truncate the tail record; the loader
  // keeps everything before it. Chop the C record's last byte.
  std::ifstream In(Path, std::ios::binary);
  std::string Whole((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  In.close();
  writeFile(Path, Whole.substr(0, Whole.size() - 2));
  ASSERT_TRUE(Journal::load(Path, L, Err)) << Err;
  EXPECT_EQ(2u, L.MaxId);
  ASSERT_EQ(2u, L.Pending.size()); // The truncated C(1) no longer counts.

  // A missing file is an empty, valid log.
  std::remove(Path.c_str());
  ASSERT_TRUE(Journal::load(Path, L, Err)) << Err;
  EXPECT_TRUE(L.Pending.empty());
  EXPECT_EQ(0u, L.MaxId);
}

//===----------------------------------------------------------------------===//
// CompileCache: content keying and error recovery
//===----------------------------------------------------------------------===//

TEST(ServiceCompileCache, ErrorThenFixedSourceRecompiles) {
  prof::CompileCache Cache;
  const std::string Broken = "class Main { static void main() { oops }";
  const std::string Fixed = corpusSource("insertion_sort");

  prof::CompileCache::Result R1 = Cache.get(Broken);
  EXPECT_FALSE(R1.ok());
  EXPECT_FALSE(R1.Error.empty());
  // Same content: the cached error is served, nothing recompiles.
  prof::CompileCache::Result R2 = Cache.get(Broken);
  EXPECT_FALSE(R2.ok());
  EXPECT_EQ(R1.Error, R2.Error);
  EXPECT_EQ(1u, Cache.stats().Compiles);
  EXPECT_EQ(1u, Cache.stats().Hits);

  // The fix is different content, so it can never collide with the
  // stale error — the old path-keyed cache would have returned the
  // error forever.
  prof::CompileCache::Result R3 = Cache.get(Fixed);
  EXPECT_TRUE(R3.ok()) << R3.Error;

  // invalidateErrors purges resolved failures only.
  EXPECT_EQ(1u, Cache.invalidateErrors());
  EXPECT_EQ(1u, Cache.stats().ErrorsInvalidated);
  prof::CompileCache::Result R4 = Cache.get(Broken);
  EXPECT_FALSE(R4.ok());
  EXPECT_EQ(3u, Cache.stats().Compiles); // Broken recompiled after purge.
  prof::CompileCache::Result R5 = Cache.get(Fixed);
  EXPECT_TRUE(R5.ok());
  EXPECT_EQ(R3.Program.get(), R5.Program.get()); // Success entry survived.
}

//===----------------------------------------------------------------------===//
// Streamed sessions: byte-identical profiles, v2 delta content
//===----------------------------------------------------------------------===//

TEST(ServiceDaemon, StreamsCorpusSessionByteIdenticalToSerial) {
  DaemonFixture F;
  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8, 12, 16};

  size_t LiveDeltas = 0;
  Session S = Client::unixSocket(F.Opts.SocketPath).submit(Job);
  S.onDelta([&](const RunDeltaMsg &) { ++LiveDeltas; });
  TypedResult R = S.wait();
  ASSERT_TRUE(R.Ok) << R.Error.Code << ": " << R.Error.Message;
  EXPECT_EQ(4u, R.Acceptance.Runs);
  EXPECT_EQ(2, R.Acceptance.Proto); // v2 negotiated by default.
  EXPECT_FALSE(R.Acceptance.Resumed);
  EXPECT_EQ(R.Deltas.size(), LiveDeltas); // Callback saw every delta.

  // Deltas arrive strictly in run-index order, one per run, each
  // carrying the v2 view of the accumulated profile: total tree
  // repetitions are monotone and decompose exactly into the per-run
  // increments, and the fitted-curve estimates appear once the series
  // has enough points for a valid fit.
  ASSERT_EQ(4u, R.Deltas.size());
  int64_t PrevReps = 0, SumNew = 0;
  for (size_t I = 0; I < R.Deltas.size(); ++I) {
    const RunDeltaMsg &D = R.Deltas[I];
    EXPECT_EQ(static_cast<int64_t>(I), D.Run);
    EXPECT_EQ("ok", D.Status);
    EXPECT_EQ(4u, D.Total);
    EXPECT_EQ(static_cast<int64_t>(I) + 1, D.MergedRuns);
    EXPECT_TRUE(D.V2);
    EXPECT_GE(D.TreeRepetitions, PrevReps);
    EXPECT_EQ(D.TreeRepetitions - PrevReps, D.NewRepetitions);
    PrevReps = D.TreeRepetitions;
    SumNew += D.NewRepetitions;
  }
  EXPECT_GT(PrevReps, 0);
  EXPECT_EQ(PrevReps, SumNew);
  // One merged run cannot support a fit (< 3 points); four can.
  EXPECT_TRUE(R.Deltas.front().Fits.empty());
  EXPECT_FALSE(R.Deltas.back().Fits.empty());

  EXPECT_EQ(4u, R.Summary.Runs);
  EXPECT_EQ(4u, R.Summary.MergedRuns);
  EXPECT_EQ(0u, R.Summary.DegradedRuns);

  prof::SessionOptions SO;
  SO.Seeds = Job.Seeds;
  EXPECT_EQ(serialReferenceJson(corpusSource(Job.Corpus), SO),
            R.ProfileJson);

  Daemon::Stats St = F.D->stats();
  EXPECT_EQ(1u, St.Accepted);
  EXPECT_EQ(1u, St.Completed);
  EXPECT_EQ(0u, St.Rejected);
  EXPECT_EQ(4u, St.DeltasStreamed);
  EXPECT_EQ(0u, St.DeltasDropped);
  EXPECT_GT(St.BytesStreamed, R.ProfileJson.size());
}

TEST(ServiceDaemon, V1ClientsNegotiateLegacyStream) {
  DaemonFixture F;
  JobSpec Job;
  Job.Protocol = 1;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8, 12};

  TypedResult R = runTyped(F.Opts.SocketPath, Job);
  ASSERT_TRUE(R.Ok) << R.Error.Code << ": " << R.Error.Message;
  EXPECT_EQ(1, R.Acceptance.Proto);
  ASSERT_EQ(3u, R.Deltas.size());
  for (const RunDeltaMsg &D : R.Deltas) {
    // Legacy stream: status-only deltas, none of the v2 fields.
    EXPECT_FALSE(D.V2);
    EXPECT_EQ(0, D.TreeRepetitions);
    EXPECT_TRUE(D.Fits.empty());
  }

  // The wire version changes the deltas, never the document.
  prof::SessionOptions SO;
  SO.Seeds = Job.Seeds;
  EXPECT_EQ(serialReferenceJson(corpusSource(Job.Corpus), SO),
            R.ProfileJson);
}

TEST(ServiceDaemon, StreamsInlineSourceWithInjectedFaults) {
  DaemonFixture F;
  JobSpec Job;
  Job.Source = corpusSource("seeded_insertion_sort_reversed");
  Job.Seeds = {4, 8, 12, 16, 20};
  Job.Policy = resilience::FailurePolicy::Skip;
  Job.InjectSpec = "run-start-fail@run2";

  TypedResult R = runTyped(F.Opts.SocketPath, Job);
  ASSERT_TRUE(R.Ok) << R.Error.Code << ": " << R.Error.Message;
  ASSERT_EQ(5u, R.Deltas.size());
  EXPECT_EQ("trap", R.Deltas[2].Status);
  EXPECT_TRUE(R.Deltas[2].Quarantined);
  // A quarantined run merges nothing: the accumulated tree is unchanged.
  EXPECT_EQ(0, R.Deltas[2].NewRepetitions);
  EXPECT_EQ(R.Deltas[1].TreeRepetitions, R.Deltas[2].TreeRepetitions);
  EXPECT_EQ(5u, R.Summary.Runs);
  EXPECT_EQ(4u, R.Summary.MergedRuns); // Exactly the quarantined run missing.
  EXPECT_EQ(1u, R.Summary.DegradedRuns);

  prof::SessionOptions SO;
  SO.Seeds = Job.Seeds;
  SO.Policy = Job.Policy;
  std::string FErr;
  ASSERT_TRUE(
      resilience::FaultPlan::parse(Job.InjectSpec, SO.Faults, FErr));
  EXPECT_EQ(serialReferenceJson(Job.Source, SO), R.ProfileJson);
  EXPECT_NE(R.ProfileJson.find("\"degraded_runs\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// TCP transport and auth
//===----------------------------------------------------------------------===//

TEST(ServiceDaemon, TcpRequiresValidToken) {
  std::string TokenPath = testScratchPath("token");
  writeFile(TokenPath, "tcp-test-token-123\n");
  DaemonOptions O;
  O.ListenAddress = "127.0.0.1:0"; // Ephemeral; read back below.
  O.AuthTokenFile = TokenPath;
  DaemonFixture F(std::move(O));
  int Port = F.D->listenPort();
  ASSERT_GT(Port, 0);

  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8, 12};

  // The right token streams the full session, byte-identical.
  TypedResult R = Client::tcp("127.0.0.1", static_cast<uint16_t>(Port),
                              "tcp-test-token-123")
                      .submit(Job)
                      .wait();
  ASSERT_TRUE(R.Ok) << R.Error.Code << ": " << R.Error.Message;
  prof::SessionOptions SO;
  SO.Seeds = Job.Seeds;
  EXPECT_EQ(serialReferenceJson(corpusSource(Job.Corpus), SO),
            R.ProfileJson);

  // A wrong token and a missing token are both rejected auth-failed.
  R = Client::tcp("127.0.0.1", static_cast<uint16_t>(Port), "wrong")
          .submit(Job)
          .wait();
  ASSERT_TRUE(R.Error.any());
  EXPECT_EQ(errc::AuthFailed, R.Error.Code) << R.Error.Message;
  R = Client::tcp("127.0.0.1", static_cast<uint16_t>(Port)).submit(Job).wait();
  ASSERT_TRUE(R.Error.any());
  EXPECT_EQ(errc::AuthFailed, R.Error.Code);
  EXPECT_NE(R.Error.Message.find("missing"), std::string::npos);

  // The Unix socket on the same daemon needs no token at all.
  R = runTyped(F.Opts.SocketPath, Job);
  EXPECT_TRUE(R.Ok) << R.Error.Code << ": " << R.Error.Message;

  Daemon::Stats St = F.D->stats();
  EXPECT_EQ(2u, St.AuthFailures);
  EXPECT_EQ(2u, St.Accepted);
  EXPECT_EQ(2u, St.Rejected);
  std::remove(TokenPath.c_str());
}

TEST(ServiceDaemon, StartRejectsInsecureConfigurations) {
  // TCP without a token file: refused at startup, not at accept time.
  {
    DaemonOptions O;
    O.SocketPath = testSocketPath();
    O.ListenAddress = "127.0.0.1:0";
    Daemon D(O);
    std::string Err;
    EXPECT_FALSE(D.start(Err));
    EXPECT_NE(Err.find("auth-token-file"), std::string::npos) << Err;
  }
  // Non-loopback /metrics without a token file: same rule — nothing
  // reachable off-host may come up token-less.
  {
    DaemonOptions O;
    O.SocketPath = testSocketPath();
    O.MetricsPort = 0;
    O.MetricsAddress = "0.0.0.0";
    Daemon D(O);
    std::string Err;
    EXPECT_FALSE(D.start(Err));
    EXPECT_NE(Err.find("auth-token-file"), std::string::npos) << Err;
  }
  // A token file that does not exist fails loudly.
  {
    DaemonOptions O;
    O.SocketPath = testSocketPath();
    O.ListenAddress = "127.0.0.1:0";
    O.AuthTokenFile = "/nonexistent/algoprof-token";
    Daemon D(O);
    std::string Err;
    EXPECT_FALSE(D.start(Err));
    EXPECT_NE(Err.find("token"), std::string::npos) << Err;
  }
}

//===----------------------------------------------------------------------===//
// Backpressure: slow clients shed deltas, never the profile
//===----------------------------------------------------------------------===//

namespace {

/// A job with enough runs that its delta stream overflows the tiny
/// send buffers configured by the backpressure tests.
JobSpec backpressureJob() {
  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_random";
  for (int I = 0; I < 96; ++I)
    Job.Seeds.push_back(4 + (I % 4) * 4);
  return Job;
}

DaemonOptions backpressureOptions(SendBuffer::Policy P) {
  DaemonOptions O;
  O.MaxSendBufferBytes = 4096;
  O.SessionSendBufBytes = 1; // Kernel clamps to its floor (~4 KiB).
  O.SlowClient = P;
  return O;
}

} // namespace

TEST(ServiceDaemon, SlowClientDropsDeltasButProfileIsIntact) {
  DaemonFixture F(backpressureOptions(SendBuffer::Policy::DropDeltas));
  JobSpec Job = backpressureJob();

  // Submit but do NOT read: the daemon's delta stream hits the kernel
  // buffer, then the bounded pending buffer, then the drop policy —
  // all without ever blocking a pool worker. Drops become visible in
  // stats() before the daemon blocks handing over the final profile.
  Session S = Client::unixSocket(F.Opts.SocketPath).submit(Job);
  ASSERT_TRUE(pollFor([&] { return F.D->stats().DeltasDropped > 0; }))
      << "no deltas dropped: backpressure never engaged";

  // Now drain the stream: the final profile is byte-identical — only
  // advisory deltas were shed, the authoritative document never
  // degrades.
  TypedResult R = S.wait();
  ASSERT_TRUE(R.Ok) << R.Error.Code << ": " << R.Error.Message;
  EXPECT_LT(R.Deltas.size(), Job.Seeds.size());
  prof::SessionOptions SO;
  SO.Seeds = Job.Seeds;
  EXPECT_EQ(serialReferenceJson(corpusSource(Job.Corpus), SO),
            R.ProfileJson);

  Daemon::Stats St = F.D->stats();
  EXPECT_GT(St.DeltasDropped, 0u);
  // Every delta either streamed or dropped; none blocked, none lost.
  EXPECT_EQ(Job.Seeds.size(), St.DeltasStreamed + St.DeltasDropped);
  EXPECT_EQ(R.Deltas.size(), St.DeltasStreamed);
  // The pending buffer never outgrew its cap.
  EXPECT_LE(St.SendBufHighWater, F.Opts.MaxSendBufferBytes);
  EXPECT_EQ(0u, St.SlowDisconnects);
  EXPECT_EQ(1u, St.Completed);
}

TEST(ServiceDaemon, SlowClientDisconnectPolicyCutsTheSession) {
  DaemonFixture F(backpressureOptions(SendBuffer::Policy::Disconnect));
  JobSpec Job = backpressureJob();

  Session S = Client::unixSocket(F.Opts.SocketPath).submit(Job);
  // Under Disconnect the overflow shuts the socket down; the session
  // still runs to completion server-side (results are not client-
  // gated), it just stops streaming.
  ASSERT_TRUE(pollFor([&] { return F.D->stats().Completed >= 1; }));

  TypedResult R = S.wait();
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Error.Transport) << R.Error.Code << ": "
                                 << R.Error.Message;

  Daemon::Stats St = F.D->stats();
  EXPECT_EQ(1u, St.SlowDisconnects);
  EXPECT_EQ(1u, St.Completed);
  EXPECT_LE(St.SendBufHighWater, F.Opts.MaxSendBufferBytes);
}

//===----------------------------------------------------------------------===//
// Durable queue: journal replay and session resume
//===----------------------------------------------------------------------===//

TEST(ServiceDaemon, ReplaysJournaledJobAndServesByteIdenticalResume) {
  std::string JournalPath = testScratchPath("journal");
  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8, 12, 16};

  // Fabricate the crash state: a job accepted (journaled) by a daemon
  // that died before completing it — an A record with no C.
  {
    Journal J;
    std::string Err;
    ASSERT_TRUE(J.open(JournalPath, Err)) << Err;
    ASSERT_TRUE(J.appendAccepted(7, encodeJobRequest(Job)));
  }

  DaemonOptions O;
  O.JournalPath = JournalPath;
  DaemonFixture F(std::move(O));

  // Resume immediately — racing the in-flight replay on purpose: the
  // daemon blocks the resume until the replayed results land.
  JobSpec Rs;
  Rs.Resume = 7;
  TypedResult R = runTyped(F.Opts.SocketPath, Rs);
  ASSERT_TRUE(R.Ok) << R.Error.Code << ": " << R.Error.Message;
  EXPECT_TRUE(R.Acceptance.Resumed);
  EXPECT_EQ(7u, R.Acceptance.Session);
  EXPECT_EQ(2, R.Acceptance.Proto);
  EXPECT_EQ(4u, R.Acceptance.Runs);

  // The resumed stream is the full v2 session: every delta, then the
  // byte-identical document.
  ASSERT_EQ(4u, R.Deltas.size());
  for (const RunDeltaMsg &D : R.Deltas)
    EXPECT_TRUE(D.V2);
  prof::SessionOptions SO;
  SO.Seeds = Job.Seeds;
  EXPECT_EQ(serialReferenceJson(corpusSource(Job.Corpus), SO),
            R.ProfileJson);

  Daemon::Stats St = F.D->stats();
  EXPECT_EQ(1u, St.JobsReplayed);
  // The replay itself is not a client session; the resume is one.
  EXPECT_EQ(1u, St.Accepted);
  EXPECT_EQ(1u, St.Completed);

  // New sessions on this daemon get ids above the journal's maximum —
  // replayed and live ids can never collide.
  TypedResult Live = runTyped(F.Opts.SocketPath, Job);
  ASSERT_TRUE(Live.Ok) << Live.Error.Code << ": " << Live.Error.Message;
  EXPECT_GT(Live.Acceptance.Session, 7u);
  std::remove(JournalPath.c_str());
}

TEST(ServiceDaemon, CompletedJournalEntriesAreNotReplayed) {
  std::string JournalPath = testScratchPath("journal");
  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8};
  {
    Journal J;
    std::string Err;
    ASSERT_TRUE(J.open(JournalPath, Err)) << Err;
    ASSERT_TRUE(J.appendAccepted(3, encodeJobRequest(Job)));
    ASSERT_TRUE(J.appendCompleted(3)); // Finished before the "crash".
  }

  DaemonOptions O;
  O.JournalPath = JournalPath;
  DaemonFixture F(std::move(O));

  // Nothing pending: nothing replayed, and results of sessions that
  // completed before the restart are not retained.
  JobSpec Rs;
  Rs.Resume = 3;
  TypedResult R = runTyped(F.Opts.SocketPath, Rs);
  ASSERT_TRUE(R.Error.any());
  EXPECT_EQ(errc::UnknownSession, R.Error.Code) << R.Error.Message;
  Rs.Resume = 99; // Never journaled at all.
  R = runTyped(F.Opts.SocketPath, Rs);
  EXPECT_EQ(errc::UnknownSession, R.Error.Code);
  EXPECT_EQ(0u, F.D->stats().JobsReplayed);
  std::remove(JournalPath.c_str());
}

TEST(ServiceDaemon, ResumeNeedsAJournaledDaemon) {
  DaemonFixture F; // No JournalPath: durability off.
  JobSpec Rs;
  Rs.Resume = 1;
  TypedResult R = runTyped(F.Opts.SocketPath, Rs);
  ASSERT_TRUE(R.Error.any());
  EXPECT_EQ(errc::UnknownSession, R.Error.Code);
  EXPECT_NE(R.Error.Message.find("--journal"), std::string::npos)
      << R.Error.Message;
}

TEST(ServiceDaemon, LiveSessionIsJournaledAndResumable) {
  std::string JournalPath = testScratchPath("journal");
  DaemonOptions O;
  O.JournalPath = JournalPath;
  DaemonFixture F(std::move(O));

  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_reversed";
  Job.Seeds = {4, 8, 12};
  TypedResult First = runTyped(F.Opts.SocketPath, Job);
  ASSERT_TRUE(First.Ok) << First.Error.Code << ": " << First.Error.Message;

  // A disconnected-and-reconnecting client resumes by id and receives
  // the byte-identical stream without the job running twice.
  JobSpec Rs;
  Rs.Resume = First.Acceptance.Session;
  TypedResult Again = runTyped(F.Opts.SocketPath, Rs);
  ASSERT_TRUE(Again.Ok) << Again.Error.Code << ": " << Again.Error.Message;
  EXPECT_TRUE(Again.Acceptance.Resumed);
  EXPECT_EQ(First.ProfileJson, Again.ProfileJson);
  EXPECT_EQ(First.Deltas.size(), Again.Deltas.size());
  EXPECT_EQ(First.Summary.MergedRuns, Again.Summary.MergedRuns);
  EXPECT_EQ(0u, F.D->stats().JobsReplayed); // Served from memory.
  EXPECT_EQ(2u, F.D->stats().Completed);

  // On disk: the A record now has its C, so a restart replays nothing.
  Journal::LoadResult L;
  std::string Err;
  ASSERT_TRUE(Journal::load(JournalPath, L, Err)) << Err;
  EXPECT_TRUE(L.Pending.empty());
  std::remove(JournalPath.c_str());
}

//===----------------------------------------------------------------------===//
// Admission control and protocol edge cases
//===----------------------------------------------------------------------===//

namespace {

/// Sends raw bytes and expects an Error frame back with \p Code.
void expectRawError(const std::string &Socket, const std::string &Raw,
                    const std::string &Code) {
  Frame Reply;
  bool GotReply = false;
  std::string Err;
  ASSERT_TRUE(sendRaw(Socket, Raw, Reply, GotReply, Err)) << Err;
  ASSERT_TRUE(GotReply) << "daemon closed without an error frame";
  ASSERT_EQ(FrameType::Error, Reply.Type);
  ErrorMsg E;
  ASSERT_TRUE(parseError(Reply.Payload, E));
  EXPECT_EQ(Code, E.Code) << E.Message;
}

} // namespace

TEST(ServiceDaemon, RejectsMalformedAndTruncatedFrames) {
  DaemonOptions O;
  O.MaxFrameBytes = 4096;
  DaemonFixture F(std::move(O));

  // Unknown frame-type byte.
  std::string BadType = encodeFrame(FrameType::Job, "x");
  BadType[4] = 0x7f;
  expectRawError(F.Opts.SocketPath, BadType, errc::MalformedFrame);

  // Truncated header: three of five bytes, then EOF.
  expectRawError(F.Opts.SocketPath, std::string("\x00\x00\x01", 3),
                 errc::MalformedFrame);

  // Truncated payload: header promises 100 bytes, delivers 10.
  std::string Short = encodeFrame(FrameType::Job, std::string(100, 'y'));
  Short.resize(5 + 10);
  expectRawError(F.Opts.SocketPath, Short, errc::MalformedFrame);

  // Right framing, wrong frame type for an opening message.
  expectRawError(F.Opts.SocketPath, encodeFrame(FrameType::Done, ""),
                 errc::MalformedFrame);

  // Oversized: the declared length alone triggers rejection; the body
  // is never transmitted.
  std::string Huge = encodeFrame(FrameType::Job, "");
  Huge[0] = 0x01; // 16 MiB declared, nothing sent.
  expectRawError(F.Opts.SocketPath, Huge, errc::OversizedFrame);

  // A payload the codec rejects — including an unsupported version.
  expectRawError(F.Opts.SocketPath,
                 encodeFrame(FrameType::Job, "not-a-version\n"),
                 errc::BadRequest);
  expectRawError(
      F.Opts.SocketPath,
      encodeFrame(FrameType::Job, "algoprof-wire/7\ncorpus=x\n"),
      errc::BadRequest);
  expectRawError(
      F.Opts.SocketPath,
      encodeFrame(FrameType::Job, "algoprof-job/1\ncorpus=no_such\n"),
      errc::BadRequest);

  EXPECT_EQ(8u, F.D->stats().Rejected);
  EXPECT_EQ(0u, F.D->stats().Accepted);
}

TEST(ServiceDaemon, EnforcesSessionQuotas) {
  DaemonOptions O;
  O.Quota.MaxRuns = 4;
  O.Quota.MaxSourceBytes = 1 << 16;
  O.Quota.MaxHeapBytes = 1 << 20;
  O.Quota.MaxRunDeadlineMs = 10000;
  O.Quota.MaxAttempts = 3;
  DaemonFixture F(std::move(O));

  auto expectQuota = [&](const JobSpec &Job) {
    TypedResult R = runTyped(F.Opts.SocketPath, Job);
    ASSERT_TRUE(R.Error.any());
    EXPECT_FALSE(R.Error.Transport) << R.Error.Message;
    EXPECT_EQ(errc::QuotaExceeded, R.Error.Code) << R.Error.Message;
  };

  JobSpec TooManyRuns;
  TooManyRuns.Corpus = "seeded_insertion_sort_random";
  TooManyRuns.Seeds = {1, 2, 3, 4, 5};
  expectQuota(TooManyRuns);

  JobSpec TooMuchHeap;
  TooMuchHeap.Corpus = "seeded_insertion_sort_random";
  TooMuchHeap.Seeds = {4};
  TooMuchHeap.MaxHeapBytes = (1 << 20) + 1;
  expectQuota(TooMuchHeap);

  JobSpec TooLongDeadline = TooMuchHeap;
  TooLongDeadline.MaxHeapBytes = 0;
  TooLongDeadline.RunDeadlineMs = 10001;
  expectQuota(TooLongDeadline);

  JobSpec TooManyAttempts = TooMuchHeap;
  TooManyAttempts.MaxHeapBytes = 0;
  TooManyAttempts.Policy = resilience::FailurePolicy::Retry;
  TooManyAttempts.MaxAttempts = 4;
  expectQuota(TooManyAttempts);

  JobSpec TooBigSource;
  TooBigSource.Source = std::string((1 << 16) + 1, 'x');
  TooBigSource.Seeds = {4};
  expectQuota(TooBigSource);

  // Within quota still works; the unlimited heap request was clamped
  // to the cap, which these tiny runs never hit.
  JobSpec Ok;
  Ok.Corpus = "seeded_insertion_sort_random";
  Ok.Seeds = {4, 8};
  TypedResult R = runTyped(F.Opts.SocketPath, Ok);
  EXPECT_TRUE(R.Ok) << R.Error.Code << ": " << R.Error.Message;
  EXPECT_EQ(5u, F.D->stats().Rejected);
  EXPECT_EQ(1u, F.D->stats().Completed);
}

TEST(ServiceDaemon, RejectsWhenSessionLimitReached) {
  DaemonOptions O;
  O.MaxSessions = 1;
  O.ReadTimeoutMs = 10000; // The idle holder must outlive the test.
  DaemonFixture F(std::move(O));

  // An idle connection occupies the only slot (admission is per
  // connection, before any byte is parsed).
  int Holder = rawConnect(F.Opts.SocketPath);
  ASSERT_GE(Holder, 0);

  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4};
  TypedResult R = runTyped(F.Opts.SocketPath, Job);
  ASSERT_TRUE(R.Error.any());
  EXPECT_EQ(errc::TooManySessions, R.Error.Code);

  // Freeing the slot re-admits. The daemon reaps finished sessions on
  // the accept path, so retry until the close has been observed.
  ::close(Holder);
  bool Admitted = false;
  for (int Try = 0; Try < 100 && !Admitted; ++Try) {
    R = runTyped(F.Opts.SocketPath, Job);
    if (R.Ok)
      Admitted = true;
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(Admitted);
}

TEST(ServiceDaemon, CompileErrorsAreAnsweredAndNotPermanent) {
  DaemonFixture F;
  const std::string Broken = "class Main { static void main() { ";
  JobSpec Bad;
  Bad.Source = Broken;
  Bad.Seeds = {4};

  TypedResult R = runTyped(F.Opts.SocketPath, Bad);
  ASSERT_TRUE(R.Error.any());
  EXPECT_EQ(errc::CompileError, R.Error.Code);
  EXPECT_FALSE(R.Error.Message.empty());

  // The "fixed" resubmission is new content: it compiles and profiles
  // (under the old path-keyed error caching this returned the stale
  // diagnostics forever).
  JobSpec Fixed = Bad;
  Fixed.Source = corpusSource("seeded_insertion_sort_random");
  R = runTyped(F.Opts.SocketPath, Fixed);
  EXPECT_TRUE(R.Ok) << R.Error.Code << ": " << R.Error.Message;

  // And the same broken source again still answers (recompiled after
  // the daemon purged the error entry; behavior, not blowup).
  R = runTyped(F.Opts.SocketPath, Bad);
  ASSERT_TRUE(R.Error.any());
  EXPECT_EQ(errc::CompileError, R.Error.Code);
}

TEST(ServiceDaemon, SurvivesClientDisconnectMidStream) {
  DaemonFixture F;

  // By hand: send the job, read Accepted, vanish. The daemon keeps
  // running the session on the shared pool and completes it.
  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8, 12, 16, 20, 24};
  int Fd = rawConnect(F.Opts.SocketPath);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendFrame(Fd, FrameType::Job, encodeJobRequest(Job)));
  Frame A;
  ASSERT_EQ(ReadStatus::Ok, readFrame(Fd, A, 1 << 20));
  ASSERT_EQ(FrameType::Accepted, A.Type);
  ::close(Fd); // Gone mid-stream.

  // The abandoned session still completes (bounded wait).
  EXPECT_TRUE(pollFor([&] { return F.D->stats().Completed >= 1; }, 5000));

  // The pool is unaffected: a fresh session streams normally and its
  // profile still matches the serial reference byte for byte.
  TypedResult R = runTyped(F.Opts.SocketPath, Job);
  ASSERT_TRUE(R.Ok) << R.Error.Code << ": " << R.Error.Message;
  prof::SessionOptions SO;
  SO.Seeds = Job.Seeds;
  EXPECT_EQ(serialReferenceJson(corpusSource(Job.Corpus), SO),
            R.ProfileJson);
  EXPECT_EQ(2u, F.D->stats().Accepted);
  EXPECT_EQ(2u, F.D->stats().Completed);
}

//===----------------------------------------------------------------------===//
// /metrics
//===----------------------------------------------------------------------===//

TEST(ServiceDaemon, MetricsEndpointServesLiveRegistry) {
  DaemonOptions O;
  O.MetricsPort = 0; // Ephemeral.
  DaemonFixture F(std::move(O));
  ASSERT_GT(F.D->metricsPort(), 0);

  JobSpec Job;
  Job.Corpus = "seeded_insertion_sort_random";
  Job.Seeds = {4, 8, 12};
  TypedResult R = runTyped(F.Opts.SocketPath, Job);
  ASSERT_TRUE(R.Ok);

  // Scraped MID pool lifetime: the daemon's workers are alive and will
  // never retire, so nonzero worker counters here prove the per-job
  // obs::flushThisThread publication (the old exit-time-only folding
  // reported zeros until shutdown).
  std::string Resp = httpGet(F.D->metricsPort(), "/metrics");
  ASSERT_NE(Resp.find("200 OK"), std::string::npos) << Resp;
  EXPECT_NE(Resp.find("algoprof_counter_total{counter=\"sessions_"
                      "accepted\"}"),
            std::string::npos);
  // The stage-2 counters are registered and exposed.
  EXPECT_NE(Resp.find("counter=\"deltas_streamed\""), std::string::npos);
  EXPECT_NE(Resp.find("counter=\"deltas_dropped\""), std::string::npos);
  EXPECT_NE(Resp.find("counter=\"jobs_replayed\""), std::string::npos);
  EXPECT_NE(Resp.find("counter=\"auth_failures\""), std::string::npos);
  // Counters are process-cumulative across tests in this binary, so
  // assert presence-and-nonzero, not exact values (exact accounting is
  // Daemon::stats()'s job, asserted everywhere above).
  EXPECT_EQ(Resp.find("algoprof_counter_total{counter=\"sessions_"
                      "completed\"} 0\n"),
            std::string::npos);
  EXPECT_EQ(Resp.find("algoprof_counter_total{counter=\"jobs_executed\"} "
                      "0\n"),
            std::string::npos);
  EXPECT_EQ(Resp.find("algoprof_counter_total{counter=\"bytes_streamed\"} "
                      "0\n"),
            std::string::npos);

  EXPECT_NE(httpGet(F.D->metricsPort(), "/nope").find("404"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Soak: 64 concurrent streamed sessions under fault injection
//===----------------------------------------------------------------------===//

TEST(ServiceDaemon, Soak64ConcurrentSessionsWithFaults) {
  DaemonOptions O;
  O.Workers = 4;
  O.MetricsPort = 0;
  DaemonFixture F(std::move(O));

  // Four program/option shapes, 16 sessions each. Shape 3 injects a
  // startup fault under the skip policy, so a quarter of all sessions
  // exercise quarantine accounting concurrently.
  struct Shape {
    std::string Corpus;
    std::vector<int64_t> Seeds;
    resilience::FailurePolicy Policy;
    std::string Inject;
    size_t Quarantined;
  };
  const std::vector<Shape> Shapes = {
      {"seeded_insertion_sort_random", {4, 8, 12, 16},
       resilience::FailurePolicy::Fail, "", 0},
      {"seeded_insertion_sort_sorted", {4, 8, 12},
       resilience::FailurePolicy::Fail, "", 0},
      {"seeded_insertion_sort_reversed", {4, 8, 12, 16, 20},
       resilience::FailurePolicy::Fail, "", 0},
      {"seeded_insertion_sort_random", {4, 8, 12, 16},
       resilience::FailurePolicy::Skip, "run-start-fail@run1", 1},
  };

  // References computed once per shape through the serial CLI path;
  // every concurrent streamed session must reproduce them exactly.
  std::vector<std::string> Reference(Shapes.size());
  for (size_t I = 0; I < Shapes.size(); ++I) {
    prof::SessionOptions SO;
    SO.Seeds = Shapes[I].Seeds;
    SO.Policy = Shapes[I].Policy;
    std::string FErr;
    ASSERT_TRUE(
        resilience::FaultPlan::parse(Shapes[I].Inject, SO.Faults, FErr));
    Reference[I] = serialReferenceJson(corpusSource(Shapes[I].Corpus), SO);
  }

  constexpr size_t NumSessions = 64;
  std::vector<std::string> Failures(NumSessions);
  std::vector<std::thread> Clients;
  Clients.reserve(NumSessions);
  for (size_t I = 0; I < NumSessions; ++I)
    Clients.emplace_back([&, I] {
      const Shape &Sh = Shapes[I % Shapes.size()];
      JobSpec Job;
      Job.Corpus = Sh.Corpus;
      Job.Seeds = Sh.Seeds;
      Job.Policy = Sh.Policy;
      Job.InjectSpec = Sh.Inject;
      TypedResult R = runTyped(F.Opts.SocketPath, Job);
      if (!R.Ok) {
        Failures[I] = R.Error.Code + ": " + R.Error.Message;
        return;
      }
      if (R.Deltas.size() != Sh.Seeds.size()) {
        Failures[I] = "expected " + std::to_string(Sh.Seeds.size()) +
                      " deltas, got " + std::to_string(R.Deltas.size());
        return;
      }
      size_t Quarantined = 0;
      for (size_t K = 0; K < R.Deltas.size(); ++K) {
        if (R.Deltas[K].Run != static_cast<int64_t>(K)) {
          Failures[I] = "deltas out of order";
          return;
        }
        Quarantined += R.Deltas[K].Quarantined ? 1 : 0;
      }
      // Exact quarantine accounting, per session, under concurrency.
      if (Quarantined != Sh.Quarantined ||
          R.Summary.Runs != Sh.Seeds.size() ||
          R.Summary.MergedRuns != Sh.Seeds.size() - Sh.Quarantined ||
          R.Summary.DegradedRuns != Sh.Quarantined) {
        Failures[I] = "quarantine accounting off";
        return;
      }
      if (R.ProfileJson != Reference[I % Shapes.size()])
        Failures[I] = "profile diverged from the serial reference";
    });

  // A scrape while the soak is in flight must answer.
  std::string MidFlight = httpGet(F.D->metricsPort(), "/metrics");
  EXPECT_NE(MidFlight.find("200 OK"), std::string::npos);

  for (std::thread &T : Clients)
    T.join();
  for (size_t I = 0; I < NumSessions; ++I)
    EXPECT_TRUE(Failures[I].empty()) << "session " << I << ": "
                                     << Failures[I];

  Daemon::Stats S = F.D->stats();
  EXPECT_EQ(NumSessions, S.Accepted);
  EXPECT_EQ(NumSessions, S.Completed);
  EXPECT_EQ(0u, S.Rejected);

  std::string Final = httpGet(F.D->metricsPort(), "/metrics");
  EXPECT_NE(Final.find("200 OK"), std::string::npos);
  EXPECT_NE(Final.find("sessions_completed"), std::string::npos);
}

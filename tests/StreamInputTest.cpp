//===- tests/StreamInputTest.cpp - External streams as inputs -------------===//
//
// Paper Sec. 2.3, "Program Inputs/Outputs": reads and writes to the
// external world associate the stream with the current repetition node,
// and the stream's size ("the size of the external file") is the input
// size for cost functions of Input algorithms.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

TEST(StreamInput, StreamBecomesAnInputWithFileSize) {
  auto CP = compile(programs::ioSumProgram());
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  for (int N = 4; N <= 32; N *= 2) {
    vm::IoChannels Io;
    for (int I = 1; I <= N; ++I)
      Io.Input.push_back(I);
    ASSERT_TRUE(S.run("Main", "main", Io).ok());
  }

  // The input stream is a live pseudo-input.
  bool SawStream = false;
  for (int32_t Id : S.inputs().liveInputs()) {
    const InputInfo &Info = S.inputs().info(Id);
    if (Info.IsStream && Info.Label == "external input stream")
      SawStream = true;
  }
  EXPECT_TRUE(SawStream);

  // The reading loop's algorithm carries a <stream size, steps> series
  // with steps == size (one read per element): a clean linear fit.
  bool CheckedSeries = false;
  for (const AlgorithmProfile &AP : S.buildProfiles()) {
    if (AP.Algo.Root->Name != "Main.main loop#0")
      continue;
    EXPECT_TRUE(AP.Class.DoesInput);
    EXPECT_TRUE(AP.Class.DoesOutput);
    for (const AlgorithmProfile::InputSeries &Ser : AP.Series) {
      if (Ser.Kind != "external input stream")
        continue;
      CheckedSeries = true;
      ASSERT_TRUE(Ser.Interesting);
      EXPECT_NEAR(Ser.Fit.growthExponent(), 1.0, 0.1)
          << Ser.Fit.formula();
      // Every point: X = channel size, Y = steps = X.
      for (const SeriesPoint &Pt : Ser.Series)
        EXPECT_EQ(Pt.X, Pt.Y);
    }
  }
  EXPECT_TRUE(CheckedSeries);
}

TEST(StreamInput, CostsAreKeyedByStream) {
  auto CP = compile(programs::ioSumProgram());
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  vm::IoChannels Io;
  Io.Input = {1, 2, 3};
  ASSERT_TRUE(S.run("Main", "main", Io).ok());

  bool SawKeyedRead = false, SawKeyedWrite = false;
  S.tree().forEach([&](const RepetitionNode &N) {
    for (const InvocationRecord &R : N.History)
      for (const auto &[Key, Count] : R.Costs.entries()) {
        (void)Count;
        if (Key.Kind == CostKind::InputRead && Key.InputId >= 0)
          SawKeyedRead = true;
        if (Key.Kind == CostKind::OutputWrite && Key.InputId >= 0)
          SawKeyedWrite = true;
      }
  });
  EXPECT_TRUE(SawKeyedRead);
  EXPECT_TRUE(SawKeyedWrite);
  // Totals count each operation once (3 reads; 3 echoes + 1 sum).
  int64_t Reads = 0, Writes = 0;
  S.tree().forEach([&](const RepetitionNode &N) {
    if (N.Key.Kind != RepKind::Root)
      return;
    for (const InvocationRecord &R : N.History) {
      CostMap All = R.Costs;
      All.merge(R.FoldedCosts);
      Reads += All.total(CostKind::InputRead);
      Writes += All.total(CostKind::OutputWrite);
    }
  });
  // The loop's costs sit on the loop node, not the root; recompute over
  // the whole tree.
  Reads = Writes = 0;
  S.tree().forEach([&](const RepetitionNode &N) {
    for (const InvocationRecord &R : N.History) {
      Reads += R.Costs.total(CostKind::InputRead);
      Writes += R.Costs.total(CostKind::OutputWrite);
    }
  });
  EXPECT_EQ(Reads, 3);
  EXPECT_EQ(Writes, 4);
}

TEST(StreamInput, OutputStreamSizeIsFinalOutputCount) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        for (int i = 0; i < 6; i++) {
          print(i * i);
        }
      }
    }
  )");
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  ASSERT_TRUE(S.run("Main", "main").ok());
  bool Checked = false;
  S.tree().forEach([&](const RepetitionNode &N) {
    if (N.Name != "Main.main loop#0")
      return;
    ASSERT_EQ(N.History.size(), 1u);
    for (const auto &[Id, Use] : N.History[0].Inputs) {
      if (!S.inputs().info(Id).IsStream)
        continue;
      EXPECT_EQ(Use.MaxSize, 6); // Six values written.
      Checked = true;
    }
  });
  EXPECT_TRUE(Checked);
}

TEST(StreamInput, PureComputationHasNoStreams) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 10; i++) { s = s + i; }
        s = s * 2;
      }
    }
  )");
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  ASSERT_TRUE(S.run("Main", "main").ok());
  EXPECT_TRUE(S.inputs().liveInputs().empty());
}

} // namespace

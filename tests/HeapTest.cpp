//===- tests/HeapTest.cpp - Heap and value unit tests ---------------------===//

#include "TestUtil.h"
#include "vm/Heap.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::vm;
using namespace algoprof::testutil;

namespace {

TEST(Value, Constructors) {
  EXPECT_EQ(Value::makeInt(42).Bits, 42);
  EXPECT_FALSE(Value::makeInt(42).IsRef);
  EXPECT_EQ(Value::makeBool(true).Bits, 1);
  EXPECT_EQ(Value::makeBool(false).Bits, 0);
  EXPECT_TRUE(Value::makeNull().isNullRef());
  Value R = Value::makeRef(7);
  EXPECT_TRUE(R.IsRef);
  EXPECT_FALSE(R.isNullRef());
  EXPECT_EQ(R.ref(), 7);
}

TEST(Value, Rendering) {
  EXPECT_EQ(Value::makeInt(-3).str(), "-3");
  EXPECT_EQ(Value::makeNull().str(), "null");
  EXPECT_EQ(Value::makeRef(12).str(), "@12");
}

TEST(Heap, ObjectDefaultsFollowFieldTypes) {
  auto CP = compile(R"(
    class P { int x; boolean b; P next; int[] data; }
    class Main { static void main() { } }
  )");
  ASSERT_TRUE(CP);
  Heap H(*CP->Mod);
  ObjId Obj = H.allocObject(CP->Mod->findClassId("P"));
  const HeapObject &O = H.get(Obj);
  EXPECT_FALSE(O.IsArray);
  ASSERT_EQ(O.Slots.size(), 4u);
  EXPECT_EQ(O.Slots[0].Bits, 0);
  EXPECT_FALSE(O.Slots[0].IsRef);
  EXPECT_TRUE(O.Slots[2].isNullRef());
  EXPECT_TRUE(O.Slots[3].isNullRef());
}

TEST(Heap, AllocationIdsAreDenseAndStable) {
  auto CP = compile(R"(
    class P { }
    class Main { static void main() { } }
  )");
  ASSERT_TRUE(CP);
  Heap H(*CP->Mod);
  int32_t ClassId = CP->Mod->findClassId("P");
  ObjId A = H.allocObject(ClassId);
  ObjId B = H.allocObject(ClassId);
  ObjId C = H.allocObject(ClassId);
  EXPECT_EQ(B, A + 1);
  EXPECT_EQ(C, B + 1);
  EXPECT_EQ(H.numObjects(), 3);
  EXPECT_TRUE(H.isValid(A));
  EXPECT_FALSE(H.isValid(C + 1));
  EXPECT_FALSE(H.isValid(NullObj));
}

TEST(Heap, ArraysDefaultToElementType) {
  auto CP = compile(R"(
    class P { }
    class Main {
      static void main() {
        int[] a = new int[1];
        P[] b = new P[1];
      }
    }
  )");
  ASSERT_TRUE(CP);
  Heap H(*CP->Mod);
  bc::TypeId PType =
      CP->Mod->Classes[static_cast<size_t>(CP->Mod->findClassId("P"))]
          .Type;
  // Find the interned array types in the compiled module.
  bc::TypeId IntArr = -1, PArr = -1;
  for (size_t T = 0; T < CP->Mod->Types.size(); ++T) {
    const bc::RuntimeType &RT = CP->Mod->Types[T];
    if (RT.Kind != bc::RtTypeKind::Array)
      continue;
    if (RT.Elem == CP->Mod->IntTypeId)
      IntArr = static_cast<bc::TypeId>(T);
    if (RT.Elem == PType)
      PArr = static_cast<bc::TypeId>(T);
  }
  ASSERT_GE(IntArr, 0);
  ASSERT_GE(PArr, 0);

  ObjId IA = H.allocArray(IntArr, 3);
  EXPECT_TRUE(H.get(IA).IsArray);
  ASSERT_EQ(H.get(IA).Slots.size(), 3u);
  EXPECT_FALSE(H.get(IA).Slots[0].IsRef);

  ObjId PA = H.allocArray(PArr, 2);
  ASSERT_EQ(H.get(PA).Slots.size(), 2u);
  EXPECT_TRUE(H.get(PA).Slots[0].isNullRef());
}

TEST(Heap, ResetClears) {
  auto CP = compile(R"(
    class P { }
    class Main { static void main() { } }
  )");
  ASSERT_TRUE(CP);
  Heap H(*CP->Mod);
  H.allocObject(CP->Mod->findClassId("P"));
  EXPECT_EQ(H.numObjects(), 1);
  H.reset();
  EXPECT_EQ(H.numObjects(), 0);
}

TEST(Heap, RecycleFreesMemoryButNeverReusesIds) {
  auto CP = compile(R"(
    class P { }
    class Main { static void main() { } }
  )");
  ASSERT_TRUE(CP);
  Heap H(*CP->Mod);
  int32_t ClassId = CP->Mod->findClassId("P");
  ObjId A = H.allocObject(ClassId);
  ObjId B = H.allocObject(ClassId);
  EXPECT_EQ(H.numLiveObjects(), 2);

  H.recycle();
  // Memory is gone, the id space is not: old ids are invalid (they can
  // never alias), new allocations continue where the last run stopped.
  EXPECT_EQ(H.numLiveObjects(), 0);
  EXPECT_EQ(H.numObjects(), 2);
  EXPECT_FALSE(H.isValid(A));
  EXPECT_FALSE(H.isValid(B));

  ObjId C = H.allocObject(ClassId);
  EXPECT_EQ(C, B + 1);
  EXPECT_TRUE(H.isValid(C));
  EXPECT_EQ(H.numObjects(), 3);
  EXPECT_EQ(H.numLiveObjects(), 1);

  // Recycle composes; reset() really does restart the id space.
  H.recycle();
  EXPECT_EQ(H.allocObject(ClassId), C + 1);
  H.reset();
  EXPECT_EQ(H.allocObject(ClassId), 0);
}

} // namespace

#!/usr/bin/env bash
# Resilience CLI tests: failure policies, deterministic fault injection
# (--inject / ALGOPROF_INJECT), run budgets, and io-write fault exits.
# Invoked by ctest as `resilience_cli_test.sh <algoprof>`.
set -u

ALGOPROF=$1
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

# Allocates one small array per loop iteration, so heap-oom injection
# and --max-heap-bytes have something to trip on.
cat > "$WORK/alloc.mj" <<'EOF'
class Main {
  static void main() {
    int n = 4;
    if (hasInput()) {
      n = readInt();
    }
    int i = 0;
    while (i < n) {
      int[] a = new int[4];
      a[0] = i;
      i = i + 1;
    }
    print(i);
  }
}
EOF

# Pure compute: only the deadline watchdog can end it early.
cat > "$WORK/spin.mj" <<'EOF'
class Main {
  static void main() {
    int i = 0;
    while (i < 100000000) {
      i = i + 1;
    }
    print(i);
  }
}
EOF

SEEDS=1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16

# A 16-run sweep with one injected failure under the skip policy must
# complete, warn about exactly the quarantined run, and report it in
# the JSON degraded_runs array.
out=$("$ALGOPROF" "$WORK/alloc.mj" --seeds "$SEEDS" --jobs 4 \
      --policy skip --inject heap-oom@run3 \
      --format json --out "$WORK/degraded.json" 2>&1)
rc=$?
[ "$rc" -eq 0 ] || fail "skip sweep: expected exit 0, got $rc: $out"
printf '%s' "$out" | grep -q "warning: run 3 quarantined" \
  || fail "skip sweep: no quarantine warning: $out"
n=$(printf '%s' "$out" | grep -c "quarantined")
[ "$n" -eq 1 ] || fail "skip sweep: expected 1 quarantined run, got $n"
grep -q '"degraded_runs"' "$WORK/degraded.json" \
  || fail "skip sweep: JSON missing degraded_runs"
grep -q '"run": 3, "status": "budget"' "$WORK/degraded.json" \
  || fail "skip sweep: degraded_runs missing run 3"

# The same sweep unfaulted must byte-match the degraded sweep over the
# surviving seeds (quarantine removes the run, not just its report).
SURVIVORS=1,2,3,5,6,7,8,9,10,11,12,13,14,15,16
"$ALGOPROF" "$WORK/alloc.mj" --seeds "$SURVIVORS" \
  --format json --out "$WORK/serial.json" >/dev/null 2>&1 \
  || fail "survivor serial sweep failed"
# Compare the algorithms section only (degraded_runs differs by design).
sed '/"degraded_runs"/,$d' "$WORK/degraded.json" > "$WORK/degraded.algo"
sed '/"degraded_runs"/,$d' "$WORK/serial.json" > "$WORK/serial.algo"
cmp -s "$WORK/degraded.algo" "$WORK/serial.algo" \
  || fail "degraded sweep profile differs from serial over survivors"

# Under the default fail policy an injected failure is a non-zero exit
# naming the run and the tripped budget.
out=$("$ALGOPROF" "$WORK/alloc.mj" --seeds "$SEEDS" --jobs 4 \
      --inject heap-oom@run3 2>&1)
rc=$?
[ "$rc" -ne 0 ] || fail "fail policy: expected non-zero exit"
printf '%s' "$out" | grep -q "error: run 3 failed (budget heap_bytes)" \
  || fail "fail policy: error does not name run and budget: $out"

# A transient fault (:once) under retry recovers: clean exit, nothing
# quarantined.
out=$("$ALGOPROF" "$WORK/alloc.mj" --seeds "$SEEDS" --jobs 4 \
      --policy retry --retries 1 --inject heap-oom@run3:once 2>&1)
rc=$?
[ "$rc" -eq 0 ] || fail "retry recovery: expected exit 0, got $rc: $out"
printf '%s' "$out" | grep -q "quarantined" \
  && fail "retry recovery: run was quarantined: $out"

# Run budgets end runs deterministically with the budget named.
out=$("$ALGOPROF" "$WORK/alloc.mj" --input 100000 --max-heap-bytes 4096 2>&1)
rc=$?
[ "$rc" -ne 0 ] || fail "--max-heap-bytes: expected non-zero exit"
printf '%s' "$out" | grep -q "budget heap_bytes" \
  || fail "--max-heap-bytes: budget not named: $out"
out=$("$ALGOPROF" "$WORK/spin.mj" --deadline-ms 1 2>&1)
rc=$?
[ "$rc" -ne 0 ] || fail "--deadline-ms: expected non-zero exit"
printf '%s' "$out" | grep -q "budget deadline" \
  || fail "--deadline-ms: budget not named: $out"

# io-write faults hit the named stream's write site and nothing else.
out=$("$ALGOPROF" "$WORK/alloc.mj" --inject io-write-fail@report \
      --format json --out "$WORK/r.json" 2>&1)
rc=$?
[ "$rc" -ne 0 ] || fail "io-write-fail@report: expected non-zero exit"
printf '%s' "$out" | grep -q "cannot write" \
  || fail "io-write-fail@report: no write error: $out"
out=$("$ALGOPROF" "$WORK/alloc.mj" --inject io-write-fail@trace \
      --trace "$WORK/t.json" 2>&1)
[ $? -ne 0 ] || fail "io-write-fail@trace: expected non-zero exit"
out=$("$ALGOPROF" "$WORK/alloc.mj" --inject io-write-fail@metrics \
      --metrics "$WORK/m.prom" 2>&1)
[ $? -ne 0 ] || fail "io-write-fail@metrics: expected non-zero exit"
# The report stream fault must not affect a metrics-only invocation.
"$ALGOPROF" "$WORK/alloc.mj" --inject io-write-fail@report \
  --metrics "$WORK/ok.prom" >/dev/null 2>&1 \
  || fail "io-write-fail@report broke an unrelated metrics write"

# ALGOPROF_INJECT is the env fallback; an explicit --inject wins.
out=$(ALGOPROF_INJECT=run-start-fail@run0 "$ALGOPROF" "$WORK/alloc.mj" 2>&1)
[ $? -ne 0 ] || fail "ALGOPROF_INJECT: expected non-zero exit"
printf '%s' "$out" | grep -q "error: run 0 failed" \
  || fail "ALGOPROF_INJECT: injected failure not reported: $out"
ALGOPROF_INJECT=run-start-fail@run0 "$ALGOPROF" "$WORK/alloc.mj" \
  --inject "" >/dev/null 2>&1 \
  || fail "--inject \"\" did not override ALGOPROF_INJECT"
out=$(ALGOPROF_INJECT=bogus "$ALGOPROF" "$WORK/alloc.mj" 2>&1)
[ $? -ne 0 ] || fail "invalid ALGOPROF_INJECT: expected non-zero exit"
printf '%s' "$out" | grep -q "invalid ALGOPROF_INJECT" \
  || fail "invalid ALGOPROF_INJECT: no diagnostic: $out"

# Malformed --inject specs and policies are rejected up front.
for bad in "heap-oom@metrics" "io-write-fail@run3" "io-write-fail@report:once" \
           "bogus@run1"; do
  out=$("$ALGOPROF" "$WORK/alloc.mj" --inject "$bad" 2>&1)
  rc=$?
  [ "$rc" -ne 0 ] || fail "--inject $bad: expected non-zero exit"
  printf '%s' "$out" | grep -qi "invalid value" \
    || fail "--inject $bad: no diagnostic: $out"
done
out=$("$ALGOPROF" "$WORK/alloc.mj" --policy sometimes 2>&1)
[ $? -ne 0 ] || fail "--policy sometimes: expected non-zero exit"
out=$("$ALGOPROF" "$WORK/alloc.mj" --retries -1 2>&1)
[ $? -ne 0 ] || fail "--retries -1: expected non-zero exit"

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES resilience cli test(s) failed" >&2
  exit 1
fi
echo "all resilience cli tests passed"

//===- tests/MultiMeasureTest.cpp - Per-type counts & cost measures -------===//
//
// Paper Sec. 3.3/3.4: AlgoProf reports structure sizes per element type
// (a graph's Vertex count vs Edge count) and produces plots for several
// cost measures (steps, reads, writes), not just algorithmic steps.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

TEST(MultiMeasure, PerTypeObjectCountsForVertexEdgeGraph) {
  // A graph modeled with explicit Vertex and Edge classes: the paper's
  // example of per-type counts (cost{input#3, Vertex, PUT} -> 33).
  auto CP = compile(R"(
    class Vertex { Edge out; int id; }
    class Edge { Vertex target; Edge nextOut; }
    class Main {
      static void main() {
        // A ring of 5 vertices, one out-edge each.
        Vertex[] vs = new Vertex[5];
        for (int i = 0; i < 5; i++) {
          vs[i] = new Vertex();
        }
        for (int i = 0; i < 5; i++) {
          Edge e = new Edge();
          e.target = vs[(i + 1) % 5];
          vs[i].out = e;
        }
        // Traverse the ring through vertices and edges.
        int hops = 0;
        Vertex cur = vs[0];
        while (hops < 10) {
          cur = cur.out.target;
          hops++;
        }
        print(cur.id);
      }
    }
  )");
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  ASSERT_TRUE(S.run("Main", "main").ok());

  // One merged structure input with 5 Vertex and 5 Edge members.
  std::vector<int32_t> Live = S.inputs().liveHeapInputs();
  ASSERT_EQ(Live.size(), 1u);
  const InputInfo &Info = S.inputs().info(Live[0]);
  int32_t VertexId = CP->Mod->findClassId("Vertex");
  int32_t EdgeId = CP->Mod->findClassId("Edge");
  ASSERT_TRUE(Info.MemberClassCounts.count(VertexId));
  ASSERT_TRUE(Info.MemberClassCounts.count(EdgeId));
  EXPECT_EQ(Info.MemberClassCounts.at(VertexId), 5);
  EXPECT_EQ(Info.MemberClassCounts.at(EdgeId), 5);
}

TEST(MultiMeasure, PerTypeAccessCostsRecorded) {
  auto CP = compile(R"(
    class Vertex { Edge out; }
    class Edge { Vertex target; }
    class Main {
      static void main() {
        Vertex a = new Vertex();
        Vertex b = new Vertex();
        Edge e = new Edge();
        a.out = e;
        e.target = b;
        Vertex cur = a;
        for (int i = 0; i < 6; i++) {
          Edge step = cur.out;
          if (step != null) {
            cur = step.target;
          } else {
            cur = a;
          }
        }
        print(cur == null);
      }
    }
  )");
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  ASSERT_TRUE(S.run("Main", "main").ok());

  // The loop's record carries per-type GET refinements for both classes.
  int32_t VertexId = CP->Mod->findClassId("Vertex");
  int32_t EdgeId = CP->Mod->findClassId("Edge");
  bool SawVertexGet = false, SawEdgeGet = false;
  S.tree().forEach([&](const RepetitionNode &N) {
    for (const InvocationRecord &R : N.History)
      for (const auto &[Key, Count] : R.Costs.entries()) {
        (void)Count;
        if (Key.Kind == CostKind::StructGet && Key.TypeId == VertexId)
          SawVertexGet = true;
        if (Key.Kind == CostKind::StructGet && Key.TypeId == EdgeId)
          SawEdgeGet = true;
      }
  });
  EXPECT_TRUE(SawVertexGet);
  EXPECT_TRUE(SawEdgeGet);
}

TEST(MultiMeasure, ReadAndWriteSeriesOfInsertionSort) {
  // Beyond steps: structure-write counts of the sort algorithm are also
  // quadratic in the input size, read counts likewise; construction
  // writes are linear.
  auto CP = compile(programs::insertionSortProgram(
      120, 10, 3, programs::InputOrder::Random));
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  ASSERT_TRUE(S.run("Main", "main").ok());

  for (const AlgorithmProfile &AP : S.buildProfiles()) {
    if (AP.Algo.Root->Name == "List.sort loop#0") {
      ASSERT_FALSE(AP.Series.empty());
      const auto &Kind = AP.Series.front();
      auto Writes = extractPooledSeries(AP.Invocations, Kind.InputIds,
                                        CostKind::StructPut);
      fit::FitResult F = fit::fitBest(Writes);
      ASSERT_TRUE(F.Valid);
      EXPECT_NEAR(F.growthExponent(), 2.0, 0.3) << F.formula();

      auto Reads = extractPooledSeries(AP.Invocations, Kind.InputIds,
                                       CostKind::StructGet);
      fit::FitResult G = fit::fitBest(Reads);
      ASSERT_TRUE(G.Valid);
      EXPECT_NEAR(G.growthExponent(), 2.0, 0.3) << G.formula();
    }
    if (AP.Algo.Root->Name == "Main.constructRandom loop#0") {
      ASSERT_FALSE(AP.Series.empty());
      const auto &Kind = AP.Series.front();
      auto Writes = extractPooledSeries(AP.Invocations, Kind.InputIds,
                                        CostKind::StructPut);
      fit::FitResult F = fit::fitBest(Writes);
      ASSERT_TRUE(F.Valid);
      EXPECT_NEAR(F.growthExponent(), 1.0, 0.2) << F.formula();
    }
  }
}

TEST(MultiMeasure, CapacityVsUniqueElementMeasures) {
  // Paper Sec. 3.4: the two array sizing strategies diverge for a
  // partially used array; both are recorded side by side.
  auto CP = compile(R"(
    class Main {
      static void main() {
        int[] big = new int[100];
        for (int i = 0; i < 7; i++) {
          big[i] = i + 1;
        }
        print(big[0]);
      }
    }
  )");
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  ASSERT_TRUE(S.run("Main", "main").ok());

  bool Checked = false;
  S.tree().forEach([&](const RepetitionNode &N) {
    if (N.Name != "Main.main loop#0")
      return;
    ASSERT_EQ(N.History.size(), 1u);
    const InvocationRecord &R = N.History[0];
    ASSERT_EQ(R.Inputs.size(), 1u);
    const InputUse &Use = R.Inputs.begin()->second;
    EXPECT_EQ(Use.MaxCapacity, 100);
    EXPECT_EQ(Use.MaxUniqueElems, 8); // 1..7 plus the default 0.
    Checked = true;
  });
  EXPECT_TRUE(Checked);
}

} // namespace

//===- tests/SmokeTest.cpp - End-to-end smoke test ------------------------===//

#include "core/Session.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;

TEST(Smoke, InsertionSortProfiles) {
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(
      programs::insertionSortProgram(40, 8, 2, programs::InputOrder::Random),
      Diags);
  ASSERT_TRUE(CP) << Diags.str();

  ProfileSession S(*CP);
  vm::RunResult R = S.run("Main", "main");
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_GT(S.tree().numRepetitions(), 0);

  std::vector<AlgorithmProfile> Profiles = S.buildProfiles();
  EXPECT_FALSE(Profiles.empty());
}

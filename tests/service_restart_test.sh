#!/usr/bin/env bash
# Durable-queue restart test through the real binaries: algoprofd is
# killed with SIGKILL, restarted on the same write-ahead journal, and
# must replay the pending job so a reconnecting algoprof_client
# `--resume`s into a final profile byte-identical to a live submission
# of the same job — also with a `--from-delta` cursor (exactly n-k
# deltas, none twice), across a journal compaction (the pending record
# and the id high-water mark survive the rotation), and through a
# SIGTERM graceful drain (exit 0). Invoked by ctest as
# `service_restart_test.sh <algoprofd> <algoprof_client>`.
set -u

DAEMON=$1
CLIENT=$2
WORK=$(mktemp -d)
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT
FAILURES=0

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

SOCK="$WORK/ap.sock"
JOURNAL="$WORK/ap.journal"
CORPUS=seeded_insertion_sort_random
SEEDS=4,8,12,16

start_daemon() {
  # A SIGKILLed daemon leaves its socket file behind; remove it so the
  # readiness probe below sees the NEW daemon's bind, not the corpse.
  # Extra arguments pass through (--compact-bytes for the compaction
  # sections below).
  rm -f "$SOCK"
  "$DAEMON" --socket "$SOCK" --journal "$JOURNAL" --jobs 2 "$@" \
    > "$WORK/daemon.log" 2>&1 &
  DPID=$!
  for _ in $(seq 100); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DPID" 2>/dev/null || break
    sleep 0.05
  done
  fail "daemon did not come up: $(cat "$WORK/daemon.log")"
  return 1
}

# --- Live submission: journaled (A + C records) and completed --------
start_daemon || exit 1
"$CLIENT" --connect "unix:$SOCK" --corpus "$CORPUS" --seeds "$SEEDS" \
  --out "$WORK/fresh.json" 2> "$WORK/fresh.err"
rc=$?
[ "$rc" -eq 0 ] || fail "live submit failed (exit $rc): $(cat "$WORK/fresh.err")"
[ -s "$WORK/fresh.json" ] || fail "live submit wrote no profile"
LIVE_ID=$(sed -n 's/^session \([0-9]*\).*/\1/p' "$WORK/fresh.err")
[ -n "$LIVE_ID" ] || fail "client did not report a session id"

# --- Crash: SIGKILL, no drain, journal left as the crash left it -----
kill -9 "$DPID" 2>/dev/null
wait "$DPID" 2>/dev/null
DPID=""
grep -q '^algoprof-journal/1$' "$JOURNAL" || fail "journal missing header"
grep -q "^C $LIVE_ID\$" "$JOURNAL" \
  || fail "completed session $LIVE_ID has no C record"

# A job the dead daemon accepted but never finished: an A record with
# no C. Appended by hand — byte-for-byte the record Journal::append
# would have written (docs/service.md documents the format).
PAYLOAD=$(printf 'algoprof-wire/2\ncorpus=%s\nseeds=%s\n' "$CORPUS" "$SEEDS")
# $() strips the payload's trailing newline: the declared length adds
# it back, the first \n below restores it, the second terminates the
# record — byte-for-byte what Journal::appendAccepted writes.
printf 'A 42 %d\n%s\n\n' "$((${#PAYLOAD} + 1))" "$PAYLOAD" >> "$JOURNAL"

# --- Restart on the same journal: the pending job replays ------------
start_daemon || exit 1

# Resume immediately: the daemon must block the resume until the
# in-flight replay finishes, then stream the byte-identical profile.
"$CLIENT" --connect "unix:$SOCK" --resume 42 \
  --out "$WORK/resumed.json" 2> "$WORK/resumed.err"
rc=$?
[ "$rc" -eq 0 ] || fail "resume failed (exit $rc): $(cat "$WORK/resumed.err")"
grep -q "(resumed)" "$WORK/resumed.err" \
  || fail "resume not flagged as resumed: $(cat "$WORK/resumed.err")"
cmp -s "$WORK/fresh.json" "$WORK/resumed.json" \
  || fail "replayed profile differs from the live submission"

# Cursor resume: a client that already saw k=2 of the 4 deltas asks
# for the tail only — exactly n-k delta lines, no run re-streamed,
# and the same byte-identical document.
"$CLIENT" --connect "unix:$SOCK" --resume 42 --from-delta 2 \
  --out "$WORK/cursor.json" 2> "$WORK/cursor.err"
rc=$?
[ "$rc" -eq 0 ] || fail "cursor resume failed (exit $rc): $(cat "$WORK/cursor.err")"
RUNS=$(grep -c '^run ' "$WORK/cursor.err")
[ "$RUNS" -eq 2 ] || fail "from-delta 2 of 4 streamed $RUNS deltas, want 2"
grep -q '^run 2 ' "$WORK/cursor.err" || fail "cursor tail is missing run 2"
grep -q '^run 3 ' "$WORK/cursor.err" || fail "cursor tail is missing run 3"
DUPES=$(grep '^run ' "$WORK/cursor.err" | awk '{print $2}' | sort | uniq -d)
[ -z "$DUPES" ] || fail "cursor resume re-streamed runs: $DUPES"
cmp -s "$WORK/fresh.json" "$WORK/cursor.json" \
  || fail "cursor-resumed profile differs from the live submission"

# Results of sessions completed before the crash are not retained:
# resuming the pre-crash id is a clean unknown-session rejection.
"$CLIENT" --connect "unix:$SOCK" --resume "$LIVE_ID" \
  --out "$WORK/stale.json" 2> "$WORK/stale.err"
rc=$?
[ "$rc" -eq 1 ] || fail "pre-crash resume: expected exit 1, got $rc"
grep -q "unknown-session" "$WORK/stale.err" \
  || fail "pre-crash resume: wrong error: $(cat "$WORK/stale.err")"

# The replay was marked complete on disk: a second restart replays
# nothing and still serves fresh jobs.
grep -q "^C 42\$" "$JOURNAL" || fail "replayed job 42 has no C record"
kill -9 "$DPID" 2>/dev/null
wait "$DPID" 2>/dev/null
DPID=""
start_daemon || exit 1
"$CLIENT" --connect "unix:$SOCK" --corpus "$CORPUS" --seeds "$SEEDS" \
  --quiet --out "$WORK/after.json" 2> "$WORK/after.err"
rc=$?
[ "$rc" -eq 0 ] || fail "post-restart submit failed: $(cat "$WORK/after.err")"
cmp -s "$WORK/fresh.json" "$WORK/after.json" \
  || fail "post-restart profile differs from the original"

kill -9 "$DPID" 2>/dev/null
wait "$DPID" 2>/dev/null
DPID=""

# --- Compaction survival: the pending record outlives the rotation ---
# Another crash-orphaned job, then a restart with compaction armed at
# the smallest threshold: the replay completes, compaction rotates the
# WAL, and both the resumable result and the id high-water mark must
# survive it.
SIZE_BEFORE=$(wc -c < "$JOURNAL")
printf 'A 77 %d\n%s\n\n' "$((${#PAYLOAD} + 1))" "$PAYLOAD" >> "$JOURNAL"
start_daemon --compact-bytes 1 || exit 1
"$CLIENT" --connect "unix:$SOCK" --resume 77 \
  --out "$WORK/compacted.json" 2> "$WORK/compacted.err"
rc=$?
[ "$rc" -eq 0 ] \
  || fail "post-compaction resume failed (exit $rc): $(cat "$WORK/compacted.err")"
cmp -s "$WORK/fresh.json" "$WORK/compacted.json" \
  || fail "post-compaction profile differs from the live submission"
# The rotation itself races the resume reply by a few milliseconds.
for _ in $(seq 100); do
  SIZE_AFTER=$(wc -c < "$JOURNAL")
  [ "$SIZE_AFTER" -lt "$SIZE_BEFORE" ] && break
  sleep 0.05
done
[ "$SIZE_AFTER" -lt "$SIZE_BEFORE" ] \
  || fail "journal did not shrink ($SIZE_BEFORE -> $SIZE_AFTER bytes)"
grep -q '^algoprof-journal/1$' "$JOURNAL" \
  || fail "compacted journal lost its header"

# The high-water mark survived the dropped records: a fresh session's
# id must land above every id the compacted-away history ever used.
"$CLIENT" --connect "unix:$SOCK" --corpus "$CORPUS" --seeds "$SEEDS" \
  --out "$WORK/hw.json" 2> "$WORK/hw.err"
rc=$?
[ "$rc" -eq 0 ] || fail "post-compaction submit failed: $(cat "$WORK/hw.err")"
HW_ID=$(sed -n 's/^session \([0-9]*\).*/\1/p' "$WORK/hw.err")
[ -n "$HW_ID" ] && [ "$HW_ID" -gt 77 ] \
  || fail "session id '$HW_ID' reuses compacted-away history (want > 77)"

# --- Graceful drain: SIGTERM finishes cleanly with exit 0 ------------
kill -TERM "$DPID" 2>/dev/null
wait "$DPID"
rc=$?
[ "$rc" -eq 0 ] || fail "SIGTERM drain exited $rc, want 0"
grep -q "drained cleanly" "$WORK/daemon.log" \
  || fail "daemon did not report a clean drain: $(tail -3 "$WORK/daemon.log")"
DPID=""

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES service restart test(s) failed" >&2
  exit 1
fi
echo "all service restart tests passed"

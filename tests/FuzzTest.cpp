//===- tests/FuzzTest.cpp - Fuzzing harness building blocks ---------------===//
//
// Tier-1 coverage for the differential fuzzing harness: determinism of
// the generator/mutator (CI reproducibility depends on it), frontend
// acceptance of generated programs, and a small in-process differential
// batch. The full batch lives behind `ctest -L fuzz` (algoprof_fuzz).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "bytecode/Verifier.h"
#include "fuzz/Mutator.h"
#include "fuzz/ProgramGen.h"
#include "parallel/SweepEngine.h"
#include "report/TreePrinter.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::fuzz;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

vm::RunOptions smallRun() {
  vm::RunOptions R;
  R.Fuel = 200'000;
  R.MaxFrames = 256;
  R.MaxArrayLength = 1 << 16;
  return R;
}

TEST(Fuzz, GeneratorIsDeterministic) {
  for (uint64_t Seed : {1ULL, 42ULL, 0xdeadULL}) {
    Rng A(Seed), B(Seed);
    EXPECT_EQ(generateProgram(A), generateProgram(B));
  }
  Rng A(1), B(2);
  EXPECT_NE(generateProgram(A), generateProgram(B));
}

TEST(Fuzz, DeriveSeedSeparatesCases) {
  EXPECT_NE(deriveSeed(7, 0), deriveSeed(7, 1));
  EXPECT_NE(deriveSeed(7, 0), deriveSeed(8, 0));
  EXPECT_EQ(deriveSeed(7, 3), deriveSeed(7, 3));
}

TEST(Fuzz, GeneratedProgramsCompileVerifyAndTerminate) {
  // The generator must emit frontend-clean programs: any rejection is a
  // generator bug (hostile *behavior* is fine, hostile *syntax* is
  // garbleSource's job). Every run must end in a defined outcome.
  for (uint64_t Case = 0; Case < 40; ++Case) {
    Rng R(deriveSeed(0xa190f17, Case));
    std::string Src = generateProgram(R);
    DiagnosticEngine Diags;
    auto CP = compileMiniJ(Src, Diags);
    ASSERT_TRUE(CP) << "case " << Case << ":\n"
                    << Diags.str() << "\n"
                    << Src;
    ASSERT_GE(CP->entryMethod("Main", "main"), 0) << Src;
    EXPECT_TRUE(bc::verifyModule(*CP->Mod).empty()) << Src;
    vm::IoChannels Io;
    Io.Input = {3, 1, 4, 1, 5};
    vm::RunResult Res = runPlain(*CP, "Main", "main", &Io, smallRun());
    (void)Res; // Ok, trap, or fuel exhaustion — returning at all is the
               // assertion; aborts fail the test process.
  }
}

TEST(Fuzz, GarbledSourcesNeverCrashTheFrontend) {
  for (uint64_t Case = 0; Case < 60; ++Case) {
    Rng R(deriveSeed(0xbad5eed, Case));
    std::string Src = garbleSource(generateProgram(R), R);
    DiagnosticEngine Diags;
    auto CP = compileMiniJ(Src, Diags);
    if (!CP) {
      // Rejections must be user-facing diagnostics, never the
      // compiler admitting it emitted unverifiable bytecode.
      EXPECT_EQ(Diags.str().find("internal:"), std::string::npos)
          << Diags.str() << "\n"
          << Src;
    }
  }
}

TEST(Fuzz, MutatorIsDeterministicAndStructurePreserving) {
  Rng G(deriveSeed(0xa190f17, 0));
  auto CP = compile(generateProgram(G));
  ASSERT_TRUE(CP);
  Rng M1(99), M2(99);
  bc::Module A = mutateModule(*CP->Mod, M1, 3);
  bc::Module B = mutateModule(*CP->Mod, M2, 3);
  ASSERT_EQ(A.Methods.size(), B.Methods.size());
  for (size_t I = 0; I < A.Methods.size(); ++I) {
    const bc::MethodInfo &Ma = A.Methods[I];
    const bc::MethodInfo &Mb = B.Methods[I];
    ASSERT_EQ(Ma.Code.size(), Mb.Code.size());
    for (size_t Pc = 0; Pc < Ma.Code.size(); ++Pc) {
      EXPECT_EQ(Ma.Code[Pc].Op, Mb.Code[Pc].Op);
      EXPECT_EQ(Ma.Code[Pc].Imm, Mb.Code[Pc].Imm);
    }
    // Headers are never mutated — only code streams.
    EXPECT_EQ(Ma.Name, CP->Mod->Methods[I].Name);
    EXPECT_EQ(Ma.NumArgs, CP->Mod->Methods[I].NumArgs);
  }
}

TEST(Fuzz, VerifierAcceptedMutantsExecuteToDefinedOutcome) {
  // Oracle 2 in miniature: whatever survives the verifier must run
  // without asserting, even though depth-only verification admits
  // type-confused code.
  Rng G(deriveSeed(0xa190f17, 1));
  auto CP = compile(generateProgram(G));
  ASSERT_TRUE(CP);
  int Executed = 0;
  for (uint64_t K = 0; K < 50; ++K) {
    Rng M(deriveSeed(0x6d757461, K));
    bc::Module Mut = mutateModule(*CP->Mod, M, 1 + (K % 4));
    if (!bc::verifyModule(Mut).empty())
      continue;
    int32_t Entry = Mut.findMethodId("Main", "main");
    if (Entry < 0)
      continue;
    vm::PreparedProgram Prep = vm::PreparedProgram::prepare(Mut);
    vm::Interpreter Interp(Prep);
    vm::InstrumentationPlan Plan = vm::InstrumentationPlan::all(Mut);
    vm::IoChannels Io;
    Io.Input = {1, 2};
    (void)Interp.run(Entry, nullptr, Plan, Io, smallRun());
    ++Executed;
  }
  // The mutator would be useless if the verifier rejected everything.
  EXPECT_GT(Executed, 0);
}

TEST(Fuzz, SerialAndParallelProfilesAgreeOnGeneratedPrograms) {
  // Oracle 3 in miniature: a few generated programs through both
  // engines, byte-compared. The 10k-case batch runs under
  // `ctest -L fuzz`.
  for (uint64_t Case = 0; Case < 6; ++Case) {
    Rng R(deriveSeed(0xd1ff, Case));
    DiagnosticEngine Diags;
    auto CP = compileMiniJ(generateProgram(R), Diags);
    ASSERT_TRUE(CP) << Diags.str();
    SessionOptions SO;
    SO.Run = smallRun();

    ProfileSession Serial(*CP, SO);
    for (int Run = 0; Run < 2; ++Run) {
      vm::IoChannels Io;
      Io.Input = {5, 2, 9};
      Serial.run("Main", "main", Io);
    }
    std::string SerialTree =
        report::renderAnnotatedTree(Serial.tree(), Serial.buildProfiles());

    SessionOptions ShardedSO = SO;
    ShardedSO.Jobs = 2;
    parallel::SweepEngine Engine(*CP, ShardedSO);
    std::vector<vm::IoChannels> Inputs(2);
    for (vm::IoChannels &Io : Inputs)
      Io.Input = {5, 2, 9};
    Engine.sweepWithInputs("Main", "main", Inputs);
    std::string ParallelTree =
        report::renderAnnotatedTree(Engine.tree(), Engine.buildProfiles());

    EXPECT_EQ(SerialTree, ParallelTree) << "case " << Case;
  }
}

} // namespace

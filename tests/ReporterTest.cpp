//===- tests/ReporterTest.cpp - Unified report rendering ------------------===//
///
/// \file
/// Tests for report::Reporter / report::Registry: the built-in format
/// set, differential equality of the csv/dot/tree reporters against
/// the legacy standalone renderers on a real profiled session, and a
/// golden file locking the "algoprof-profile/2" JSON schema on
/// hand-built profiles (no fitting, so every byte is deterministic).
///
/// ctest label: obs (the reporting satellite rides with the
/// observability binary).
///
//===----------------------------------------------------------------------===//

#include "GoldenUtil.h"
#include "TestUtil.h"
#include "programs/Programs.h"
#include "report/CsvWriter.h"
#include "report/DotExporter.h"
#include "report/Reporter.h"
#include "report/TreePrinter.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::report;

namespace {

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(ReporterRegistry, BuiltinFormats) {
  const Registry &R = Registry::builtin();
  std::vector<std::string> Expected = {"table", "tree", "csv", "dot",
                                       "json"};
  EXPECT_EQ(R.names(), Expected);
  for (const std::string &Name : Expected) {
    const Reporter *Rep = R.find(Name);
    ASSERT_NE(Rep, nullptr) << Name;
    EXPECT_EQ(Rep->name(), Name);
  }
  EXPECT_EQ(R.find("yaml"), nullptr);
  EXPECT_EQ(R.find(""), nullptr);
}

class StubReporter : public Reporter {
public:
  StubReporter(std::string Name, std::string Doc)
      : Name(std::move(Name)), Doc(std::move(Doc)) {}
  std::string name() const override { return Name; }

private:
  std::string renderDocument(const ReportInput &) const override {
    return Doc;
  }
  std::string Name, Doc;
};

TEST(ReporterRegistry, AddReplacesSameName) {
  Registry R;
  R.add(std::make_unique<StubReporter>("x", "first"));
  R.add(std::make_unique<StubReporter>("y", "other"));
  R.add(std::make_unique<StubReporter>("x", "second"));
  EXPECT_EQ(R.names(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(R.find("x")->render(ReportInput()), "second");
}

//===----------------------------------------------------------------------===//
// Differential: format names must equal the legacy standalone renderers
//===----------------------------------------------------------------------===//

/// One profiled session over the Figure 1 insertion-sort workload —
/// enough structure for interesting series, fits, and a non-trivial
/// repetition tree.
class ReporterSessionTest : public ::testing::Test {
protected:
  void SetUp() override {
    CP = testutil::compile(
        programs::seededInsertionSortProgram(programs::InputOrder::Random));
    ASSERT_TRUE(CP);
    SessionOptions SO;
    SO.Seeds = {8, 12, 16, 20};
    Driver = std::make_unique<ProfileDriver>(*CP, SO);
    for (const vm::RunResult &R : Driver->runAll("Main", "main"))
      ASSERT_TRUE(R.ok()) << R.TrapMessage;
    Profiles = Driver->buildProfiles();
    In.Tree = &Driver->tree();
    In.Inputs = &Driver->inputs();
    In.Profiles = &Profiles;
  }
  std::unique_ptr<CompiledProgram> CP;
  std::unique_ptr<ProfileDriver> Driver;
  std::vector<AlgorithmProfile> Profiles;
  ReportInput In;
};

TEST_F(ReporterSessionTest, CsvEqualsLegacyWriter) {
  std::vector<std::pair<std::string, std::vector<SeriesPoint>>> All;
  for (const AlgorithmProfile &AP : Profiles)
    for (const AlgorithmProfile::InputSeries &Ser : AP.Series)
      if (Ser.Interesting)
        All.emplace_back("algo" + std::to_string(AP.Algo.Id) + ":" +
                             Ser.Kind,
                         Ser.Series);
  ASSERT_FALSE(All.empty()) << "workload produced no interesting series";
  EXPECT_EQ(Registry::builtin().find("csv")->render(In), seriesToCsv(All));
}

TEST_F(ReporterSessionTest, DotEqualsLegacyExporter) {
  EXPECT_EQ(Registry::builtin().find("dot")->render(In),
            repetitionTreeToDot(*In.Tree, Profiles));
}

TEST_F(ReporterSessionTest, TreeEqualsLegacyPrinter) {
  EXPECT_EQ(Registry::builtin().find("tree")->render(In),
            renderAnnotatedTree(*In.Tree, Profiles));
}

TEST_F(ReporterSessionTest, TableListsEveryAlgorithm) {
  std::string Doc = Registry::builtin().find("table")->render(In);
  for (const AlgorithmProfile &AP : Profiles)
    EXPECT_NE(Doc.find("algo" + std::to_string(AP.Algo.Id)),
              std::string::npos);
}

TEST_F(ReporterSessionTest, JsonCarriesSchemaAndFits) {
  std::string Doc = Registry::builtin().find("json")->render(In);
  EXPECT_NE(Doc.find("\"schema\": \"algoprof-profile/2\""),
            std::string::npos);
  // A clean session still carries the (empty) degraded-runs array.
  EXPECT_NE(Doc.find("\"degraded_runs\": []"), std::string::npos);
  EXPECT_NE(Doc.find("\"fit\""), std::string::npos);
  EXPECT_NE(Doc.find("\"points\""), std::string::npos);
  // Braces/brackets balance — cheap structural sanity for a renderer
  // that assembles JSON by hand.
  int Depth = 0;
  bool InString = false, Escaped = false;
  for (char C : Doc) {
    if (Escaped) {
      Escaped = false;
      continue;
    }
    if (C == '\\') {
      Escaped = true;
      continue;
    }
    if (C == '"') {
      InString = !InString;
      continue;
    }
    if (InString)
      continue;
    if (C == '{' || C == '[')
      ++Depth;
    if (C == '}' || C == ']')
      --Depth;
    ASSERT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
  EXPECT_FALSE(InString);
}

//===----------------------------------------------------------------------===//
// JSON schema golden (hand-built profiles: byte-deterministic)
//===----------------------------------------------------------------------===//

TEST(ReporterJson, SchemaGolden) {
  std::vector<AlgorithmProfile> Profiles;

  AlgorithmProfile A;
  A.Algo.Id = 3;
  A.Label = "Traversal of a \"Node\"-based\nstructure \\ pooled";
  A.Class.DoesInput = true;
  A.Class.Inputs.push_back({7, AlgorithmClass::Traversal});
  A.Class.Inputs.push_back({9, AlgorithmClass::Untouched});
  AlgorithmProfile::InputSeries S1;
  S1.Kind = "Node-based recursive structure";
  S1.InputIds = {7, 9};
  S1.Series = {{4, 16}, {8, 64}, {16, 256.5}};
  S1.Fit.Kind = fit::ModelKind::Quadratic;
  S1.Fit.Coefficient = 1.0;
  S1.Fit.R2 = 0.9987654321;
  S1.Fit.Valid = true;
  S1.Interesting = true;
  fit::FitResult Mf;
  Mf.Kind = fit::ModelKind::Linear;
  Mf.Coefficient = 2.5;
  Mf.R2 = 1.0;
  Mf.Valid = true;
  S1.MeasureFits[CostKind::StructGet] = Mf;
  A.Series.push_back(S1);
  AlgorithmProfile::InputSeries S2;
  S2.Kind = "Array-based structure";
  S2.Series = {{3, 3}};
  A.Series.push_back(S2); // Uninteresting: no fit emitted.
  Profiles.push_back(std::move(A));

  AlgorithmProfile B; // Data-structure-less, no series at all.
  B.Algo.Id = 4;
  B.Label = "Data-structure-less algorithm";
  B.Class.DoesOutput = true;
  Profiles.push_back(std::move(B));

  // One degraded run, exercising every FailureInfo field plus string
  // escaping in the message.
  std::vector<resilience::FailureInfo> Degraded;
  resilience::FailureInfo FI;
  FI.Run = 3;
  FI.Status = vm::RunStatus::BudgetExceeded;
  FI.Attempts = 2;
  FI.Budget = "heap_bytes";
  FI.Quarantined = true;
  FI.Injected = true;
  FI.Message = "injected heap-oom \"budget\" trap";
  Degraded.push_back(FI);

  ReportInput In;
  In.Profiles = &Profiles;
  In.Degraded = &Degraded;
  testutil::expectMatchesGolden(
      Registry::builtin().find("json")->render(In), "profile_schema.json");
}

} // namespace

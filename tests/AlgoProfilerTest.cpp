//===- tests/AlgoProfilerTest.cpp - Repetition tree construction ----------===//
//
// Tests the paper's Sec. 3.2 dynamic analysis: step counting, recursion
// folding, per-invocation history, cost combination semantics (Listing
// 3), and the Listing 4 first-access/exit-size behavior.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

struct ProfiledRun {
  std::unique_ptr<CompiledProgram> CP;
  std::unique_ptr<ProfileSession> Session;
};

ProfiledRun profile(const std::string &Src,
                    SessionOptions Opts = SessionOptions()) {
  ProfiledRun P;
  P.CP = compile(Src);
  if (!P.CP)
    return P;
  P.Session = std::make_unique<ProfileSession>(*P.CP, Opts);
  vm::RunResult R = P.Session->run("Main", "main");
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return P;
}

const RepetitionNode *findNode(const RepetitionTree &T,
                               const std::string &Name) {
  const RepetitionNode *Found = nullptr;
  T.forEach([&](const RepetitionNode &N) {
    if (N.Name == Name)
      Found = &N;
  });
  return Found;
}

TEST(AlgoProfiler, LoopStepsEqualIterations) {
  ProfiledRun P = profile(R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 9; i++) { s = s + i; }
        print(s);
      }
    }
  )");
  const RepetitionNode *Loop = findNode(P.Session->tree(),
                                        "Main.main loop#0");
  ASSERT_NE(Loop, nullptr);
  ASSERT_EQ(Loop->History.size(), 1u);
  EXPECT_EQ(Loop->History[0].Costs.steps(), 9);
  EXPECT_TRUE(Loop->History[0].Finalized);
}

TEST(AlgoProfiler, Listing3CombinedCostIsSix) {
  // Paper Sec. 2.6: outer 3 steps + inner (0+1+2) = 6 when combined.
  ProfiledRun P = profile(R"(
    class Main {
      static void main() {
        for (int o = 0; o < 3; o++) {
          for (int i = 0; i < o; i++) {
          }
        }
      }
    }
  )");
  const RepetitionNode *Outer = findNode(P.Session->tree(),
                                         "Main.main loop#0");
  const RepetitionNode *Inner = findNode(P.Session->tree(),
                                         "Main.main loop#1");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Outer->totalSteps(), 3);
  EXPECT_EQ(Inner->totalSteps(), 3); // 0 + 1 + 2.
  EXPECT_EQ(Inner->History.size(), 3u);
  EXPECT_EQ(Inner->Parent, Outer);

  // Combine the two nodes as one algorithm (forced grouping via an
  // ad-hoc Algorithm): total 6 steps.
  Algorithm A;
  A.Root = Outer;
  A.Nodes = {Outer, Inner};
  std::vector<CombinedInvocation> Combined =
      combineInvocations(A, P.Session->inputs());
  ASSERT_EQ(Combined.size(), 1u);
  EXPECT_EQ(Combined[0].Costs.steps(), 6);
}

TEST(AlgoProfiler, ChildInvocationsAttributeToParentInvocation) {
  ProfiledRun P = profile(R"(
    class Main {
      static void main() {
        for (int o = 0; o < 4; o++) {
          for (int i = 0; i < 2; i++) {
          }
        }
      }
    }
  )");
  const RepetitionNode *Outer = findNode(P.Session->tree(),
                                         "Main.main loop#0");
  const RepetitionNode *Inner = findNode(P.Session->tree(),
                                         "Main.main loop#1");
  ASSERT_NE(Inner, nullptr);
  ASSERT_EQ(Inner->History.size(), 4u);
  for (const InvocationRecord &R : Inner->History) {
    EXPECT_EQ(R.ParentNode, Outer);
    EXPECT_EQ(R.ParentInvocation, 0); // The single outer invocation.
    EXPECT_EQ(R.Costs.steps(), 2);
  }
}

TEST(AlgoProfiler, RecursionFoldsOntoHeader) {
  ProfiledRun P = profile(R"(
    class Main {
      static int fact(int n) {
        if (n <= 1) { return 1; }
        return n * fact(n - 1);
      }
      static void main() {
        print(fact(6));
        print(fact(4));
      }
    }
  )");
  const RepetitionNode *Rec = findNode(P.Session->tree(),
                                       "Main.fact (recursion)");
  ASSERT_NE(Rec, nullptr);
  // One node; two outer invocations; folded steps = calls beyond the
  // first: fact(6) -> 5, fact(4) -> 3.
  EXPECT_EQ(Rec->History.size(), 2u);
  EXPECT_EQ(Rec->History[0].Costs.steps(), 5);
  EXPECT_EQ(Rec->History[1].Costs.steps(), 3);
  // No nested fact node exists anywhere.
  int FactNodes = 0;
  P.Session->tree().forEach([&](const RepetitionNode &N) {
    if (N.Name == "Main.fact (recursion)")
      ++FactNodes;
  });
  EXPECT_EQ(FactNodes, 1);
}

TEST(AlgoProfiler, MutualRecursionFoldsOntoOneNode) {
  ProfiledRun P = profile(R"(
    class Main {
      static boolean isEven(int n) {
        if (n == 0) { return true; }
        return isOdd(n - 1);
      }
      static boolean isOdd(int n) {
        if (n == 0) { return false; }
        return isEven(n - 1);
      }
      static void main() { print(isEven(8)); }
    }
  )");
  // Exactly one recursion node exists (the header of the cycle).
  int RecNodes = 0;
  const RepetitionNode *Rec = nullptr;
  P.Session->tree().forEach([&](const RepetitionNode &N) {
    if (N.Key.Kind == RepKind::Recursion) {
      ++RecNodes;
      Rec = &N;
    }
  });
  EXPECT_EQ(RecNodes, 1);
  ASSERT_NE(Rec, nullptr);
  ASSERT_EQ(Rec->History.size(), 1u);
  // isEven is entered 5 times (8,6,4,2,0): 4 folded steps.
  EXPECT_EQ(Rec->History[0].Costs.steps(), 4);
}

TEST(AlgoProfiler, LoopInsideRecursionReentersSameNode) {
  ProfiledRun P = profile(R"(
    class Main {
      static int walk(int n) {
        int s = 0;
        for (int i = 0; i < 2; i++) { s = s + i; }
        if (n == 0) { return s; }
        return s + walk(n - 1);
      }
      static void main() { print(walk(3)); }
    }
  )");
  const RepetitionNode *Rec = findNode(P.Session->tree(),
                                       "Main.walk (recursion)");
  const RepetitionNode *Loop = findNode(P.Session->tree(),
                                        "Main.walk loop#0");
  ASSERT_NE(Rec, nullptr);
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->Parent, Rec);
  // The loop ran once per activation: walk(3..0) = 4 invocations.
  EXPECT_EQ(Loop->History.size(), 4u);
  for (const InvocationRecord &R : Loop->History)
    EXPECT_EQ(R.Costs.steps(), 2);
}

TEST(AlgoProfiler, TreePathsAreUnique) {
  // On any root path a given repetition key occurs at most once.
  ProfiledRun P = profile(
      programs::insertionSortProgram(30, 10, 2,
                                     programs::InputOrder::Random));
  P.Session->tree().forEach([&](const RepetitionNode &N) {
    for (const RepetitionNode *A = N.Parent; A; A = A->Parent)
      EXPECT_FALSE(A->Key == N.Key);
  });
}

TEST(AlgoProfiler, Listing4FirstAccessSeesPartialStructure) {
  // Paper Listing 4: during a loop construction the first PUTFIELD only
  // reaches one node; the exit remeasure sees the whole list.
  ProfiledRun P = profile(programs::listing4Program(15));
  const RepetitionNode *Loop = findNode(
      P.Session->tree(), "Main.constructListWithLoop loop#0");
  ASSERT_NE(Loop, nullptr);
  ASSERT_EQ(Loop->History.size(), 1u);
  const InvocationRecord &R = Loop->History[0];
  ASSERT_EQ(R.Inputs.size(), 1u);
  const InputUse &Use = R.Inputs.begin()->second;
  EXPECT_EQ(Use.FirstSize, 1);  // One reachable node at first access.
  EXPECT_EQ(Use.LastSize, 15);  // The full list at exit.
  EXPECT_EQ(Use.MaxSize, 15);   // Paper rule: max over the invocation.
}

TEST(AlgoProfiler, Listing4RecursiveConstructionMeasured) {
  ProfiledRun P = profile(programs::listing4Program(12));
  const RepetitionNode *Rec = findNode(
      P.Session->tree(), "Main.constructListWithRecursion (recursion)");
  ASSERT_NE(Rec, nullptr);
  ASSERT_EQ(Rec->History.size(), 1u);
  const InvocationRecord &R = Rec->History[0];
  ASSERT_EQ(R.Inputs.size(), 1u);
  EXPECT_EQ(R.Inputs.begin()->second.MaxSize, 12);
}

TEST(AlgoProfiler, Listing4PartiallyUsedArray) {
  // new int[1000] with 10 writes: unique-element size 10, capacity 1000.
  ProfiledRun P = profile(programs::listing4Program(5));
  const RepetitionNode *Loop = findNode(
      P.Session->tree(), "Main.constructPartiallyUsedArray loop#0");
  ASSERT_NE(Loop, nullptr);
  const InvocationRecord &R = Loop->History[0];
  ASSERT_EQ(R.Inputs.size(), 1u);
  const InputUse &Use = R.Inputs.begin()->second;
  EXPECT_EQ(Use.MaxSize, 10);        // Unique elements {0,2,...,18}.
  EXPECT_EQ(Use.MaxCapacity, 1000);  // The capacity measure.
}

TEST(AlgoProfiler, MultipleRunsAccumulateIntoOneTree) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        for (int i = 0; i < 3; i++) { }
      }
    }
  )");
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  ASSERT_TRUE(S.run("Main", "main").ok());
  ASSERT_TRUE(S.run("Main", "main").ok());
  ASSERT_TRUE(S.run("Main", "main").ok());
  const RepetitionNode *Loop = findNode(S.tree(), "Main.main loop#0");
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->History.size(), 3u);
  EXPECT_EQ(S.tree().root().History.size(), 3u);
}

TEST(AlgoProfiler, AllMethodsPlanCreatesMethodNodes) {
  SessionOptions Opts;
  Opts.AllMethodsPlan = true;
  ProfiledRun P = profile(R"(
    class Main {
      static int helper(int x) { return x + 1; }
      static void main() { print(helper(1)); }
    }
  )",
                          Opts);
  // Without static header analysis, every method becomes a node.
  EXPECT_NE(findNode(P.Session->tree(), "Main.helper (recursion)"),
            nullptr);
}

TEST(AlgoProfiler, HeadersOnlyPlanMatchesAllMethodsOnRecursions) {
  const std::string Src = R"(
    class Main {
      static int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
      }
      static void main() { print(fib(8)); }
    }
  )";
  ProfiledRun Headers = profile(Src);
  SessionOptions Opts;
  Opts.AllMethodsPlan = true;
  ProfiledRun All = profile(Src, Opts);

  const RepetitionNode *A = findNode(Headers.Session->tree(),
                                     "Main.fib (recursion)");
  const RepetitionNode *B = findNode(All.Session->tree(),
                                     "Main.fib (recursion)");
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  // Same folded step counts under both instrumentation plans.
  EXPECT_EQ(A->totalSteps(), B->totalSteps());
}

TEST(AlgoProfiler, TrapLeavesConsistentTree) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int[] a = new int[3];
        for (int i = 0; i < 10; i++) {
          a[i] = i;
        }
      }
    }
  )");
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  vm::RunResult R = S.run("Main", "main");
  EXPECT_EQ(R.Status, vm::RunStatus::Trapped);
  // The unwinding finalized every record.
  S.tree().forEach([](const RepetitionNode &N) {
    for (const InvocationRecord &Rec : N.History)
      EXPECT_TRUE(Rec.Finalized);
  });
}

} // namespace

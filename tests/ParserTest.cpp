//===- tests/ParserTest.cpp - Parser unit tests ---------------------------===//

#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace algoprof;

namespace {

std::unique_ptr<Program> parseOk(const std::string &Src) {
  DiagnosticEngine Diags;
  auto P = parseMiniJ(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return P;
}

void parseErr(const std::string &Src) {
  DiagnosticEngine Diags;
  parseMiniJ(Src, Diags);
  EXPECT_TRUE(Diags.hasErrors()) << "expected a parse error";
}

TEST(Parser, EmptyClass) {
  auto P = parseOk("class A { }");
  ASSERT_EQ(P->Classes.size(), 1u);
  EXPECT_EQ(P->Classes[0]->Name, "A");
  EXPECT_TRUE(P->Classes[0]->SuperName.empty());
}

TEST(Parser, Extends) {
  auto P = parseOk("class A { } class B extends A { }");
  ASSERT_EQ(P->Classes.size(), 2u);
  EXPECT_EQ(P->Classes[1]->SuperName, "A");
}

TEST(Parser, FieldsAndMethods) {
  auto P = parseOk(R"(
    class A {
      int x;
      A next;
      int[] data;
      static void m() { }
      int get() { return x; }
    }
  )");
  const ClassDecl &A = *P->Classes[0];
  ASSERT_EQ(A.Fields.size(), 3u);
  EXPECT_TRUE(A.Fields[0]->DeclaredType.isInt());
  EXPECT_EQ(A.Fields[1]->DeclaredType.ClassName, "A");
  EXPECT_EQ(A.Fields[2]->DeclaredType.ArrayDims, 1);
  ASSERT_EQ(A.Methods.size(), 2u);
  EXPECT_TRUE(A.Methods[0]->IsStatic);
  EXPECT_FALSE(A.Methods[1]->IsStatic);
}

TEST(Parser, Constructor) {
  auto P = parseOk("class A { int x; A(int x) { this.x = x; } }");
  const MethodDecl *Ctor = P->Classes[0]->findCtor();
  ASSERT_NE(Ctor, nullptr);
  EXPECT_TRUE(Ctor->IsCtor);
  EXPECT_EQ(Ctor->Params.size(), 1u);
}

TEST(Parser, GenericClassErasesTypeParams) {
  auto P = parseOk(R"(
    class Node<T> {
      T value;
      Node<T> next;
    }
  )");
  const ClassDecl &N = *P->Classes[0];
  ASSERT_EQ(N.TypeParams.size(), 1u);
  // T erases to Object; Node<T> erases to Node.
  EXPECT_EQ(N.Fields[0]->DeclaredType.ClassName, "Object");
  EXPECT_EQ(N.Fields[1]->DeclaredType.ClassName, "Node");
}

TEST(Parser, VarDeclVsExpressionDisambiguation) {
  auto P = parseOk(R"(
    class A {
      static void m(int a, int b) {
        int x = 1;
        A y = null;
        A[] z = null;
        boolean c = a < b;
        x = a + b;
      }
    }
  )");
  (void)P;
}

TEST(Parser, GenericVarDecl) {
  auto P = parseOk(R"(
    class Node<T> { T value; }
    class A {
      static void m() {
        Node<Node<A>> n = null;
        n = n;
      }
    }
  )");
  (void)P;
}

TEST(Parser, ComparisonNotMistakenForGeneric) {
  auto P = parseOk(R"(
    class A {
      static boolean m(int a, int b) {
        return a < b;
      }
    }
  )");
  (void)P;
}

TEST(Parser, ControlFlowStatements) {
  auto P = parseOk(R"(
    class A {
      static int m(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) {
          if (i % 2 == 0) {
            s = s + i;
          } else {
            continue;
          }
          while (s > 100) {
            s = s - 100;
            break;
          }
        }
        for (;;) {
          return s;
        }
      }
    }
  )");
  (void)P;
}

TEST(Parser, NewExpressions) {
  auto P = parseOk(R"(
    class B { B(int x) { } }
    class A {
      static void m() {
        B b = new B(1);
        int[] a = new int[10];
        int[][] m2 = new int[3][4];
        B[] bs = new B[5];
        int[][] jag = new int[3][];
      }
    }
  )");
  (void)P;
}

TEST(Parser, PostfixChains) {
  auto P = parseOk(R"(
    class A {
      A next;
      int[] data;
      static void m(A a) {
        int x = a.next.next.data[3];
        a.next.data[0]++;
        --x;
        x++;
      }
    }
  )");
  (void)P;
}

TEST(Parser, CallForms) {
  auto P = parseOk(R"(
    class A {
      int f() { return 0; }
      static int g() { return 1; }
      void m() {
        int a = f();
        int b = A.g();
        int c = this.f();
        print(a + b + c);
      }
    }
  )");
  (void)P;
}

TEST(Parser, ErrorMissingSemicolon) { parseErr("class A { int x }"); }

TEST(Parser, ErrorAssignToRValue) {
  parseErr("class A { static void m() { 1 = 2; } }");
}

TEST(Parser, ErrorTopLevelJunk) { parseErr("int x;"); }

TEST(Parser, ErrorUnclosedClass) { parseErr("class A { int x;"); }

TEST(Parser, ErrorThreeSizedDims) {
  // Parses fine but must be rejected by the compiler; at minimum the
  // parser accepts and sema/compiler diagnoses. Here: unsized-then-sized
  // is a parse error.
  parseErr("class A { static void m() { int[][] a = new int[][3]; } }");
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  DiagnosticEngine Diags;
  parseMiniJ(R"(
    class A {
      static void m() {
        int x = ;
        int y = 2;
        y = ;
      }
    }
  )",
             Diags);
  EXPECT_GE(Diags.errorCount(), 2u);
}

} // namespace

//===- tests/InputTableTest.cpp - Input identification and sizing ---------===//

#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

std::unique_ptr<ProfileSession> profileSrc(
    const prof::CompiledProgram &CP,
    EquivalenceStrategy Eq = EquivalenceStrategy::SomeElements) {
  SessionOptions Opts;
  Opts.Profile.Equivalence = Eq;
  auto S = std::make_unique<ProfileSession>(CP, Opts);
  vm::RunResult R = S->run("Main", "main");
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  return S;
}

TEST(InputTable, OneListOneInput) {
  auto CP = compile(R"(
    class Node { Node next; int v; }
    class Main {
      static void main() {
        Node list = null;
        for (int i = 0; i < 10; i++) {
          Node n = new Node();
          n.next = list;
          list = n;
        }
        int c = 0;
        while (list != null) {
          c++;
          list = list.next;
        }
        print(c);
      }
    }
  )");
  auto S = profileSrc(*CP);
  EXPECT_EQ(S->inputs().liveHeapInputs().size(), 1u);
  const InputInfo &Info = S->inputs().info(S->inputs().liveHeapInputs()[0]);
  EXPECT_FALSE(Info.IsArray);
  EXPECT_EQ(Info.Label, "Node-based recursive structure");
  EXPECT_EQ(Info.Members.size(), 10u);
}

TEST(InputTable, TwoDisjointListsTwoInputs) {
  auto CP = compile(R"(
    class Node { Node next; }
    class Main {
      static Node build(int n) {
        Node list = null;
        for (int i = 0; i < n; i++) {
          Node x = new Node();
          x.next = list;
          list = x;
        }
        return list;
      }
      static void main() {
        Node a = build(4);
        Node b = build(7);
        a = null;
        b = null;
      }
    }
  )");
  auto S = profileSrc(*CP);
  EXPECT_EQ(S->inputs().liveHeapInputs().size(), 2u);
}

TEST(InputTable, ConcatenationMergesInputs) {
  auto CP = compile(R"(
    class Node { Node next; }
    class Main {
      static Node build(int n) {
        Node list = null;
        for (int i = 0; i < n; i++) {
          Node x = new Node();
          x.next = list;
          list = x;
        }
        return list;
      }
      static void main() {
        Node a = build(3);
        Node b = build(4);
        // Splice b onto a's tail: the two structures become one.
        Node t = a;
        while (t.next != null) { t = t.next; }
        t.next = b;
        int c = 0;
        while (a != null) { c++; a = a.next; }
        print(c);
      }
    }
  )");
  auto S = profileSrc(*CP);
  EXPECT_EQ(S->inputs().liveHeapInputs().size(), 1u);
  EXPECT_EQ(S->inputs().info(S->inputs().liveHeapInputs()[0]).Members.size(),
            7u);
}

TEST(InputTable, ReallocatedArrayStaysOneInput) {
  // The paper's motivating case for SomeElements (footnote 1).
  auto CP = compile(programs::arrayListProgram(false, 12, 12));
  auto S = profileSrc(*CP);
  // All backing arrays of the grow-by-one list merged into one input.
  EXPECT_EQ(S->inputs().liveHeapInputs().size(), 1u);
  const InputInfo &Info = S->inputs().info(S->inputs().liveHeapInputs()[0]);
  EXPECT_TRUE(Info.IsArray);
}

TEST(InputTable, SameArrayStrategySplitsOnRealloc) {
  // Ablation: under SameArray every reallocation looks like a fresh
  // input — exactly the failure the paper argues against.
  auto CP = compile(programs::arrayListProgram(false, 12, 12));
  auto S = profileSrc(*CP, EquivalenceStrategy::SameArray);
  EXPECT_GT(S->inputs().liveHeapInputs().size(), 1u);
}

TEST(InputTable, SameTypePoolsDisjointStructures) {
  auto CP = compile(R"(
    class Node { Node next; }
    class Main {
      static Node build(int n) {
        Node list = null;
        for (int i = 0; i < n; i++) {
          Node x = new Node();
          x.next = list;
          list = x;
        }
        return list;
      }
      static void main() {
        Node a = build(4);
        Node b = build(7);
        a = null;
        b = null;
      }
    }
  )");
  auto S = profileSrc(*CP, EquivalenceStrategy::SameType);
  // SameType deems disconnected same-typed structures equivalent.
  EXPECT_EQ(S->inputs().liveHeapInputs().size(), 1u);
}

TEST(InputTable, AllElementsSplitsEvolvingStructure) {
  // Under AllElements a growing structure is a new input per size.
  auto CP = compile(R"(
    class Node { Node next; }
    class Main {
      static void main() {
        Node list = null;
        for (int i = 0; i < 5; i++) {
          Node x = new Node();
          x.next = list;
          list = x;
        }
        list = null;
      }
    }
  )");
  auto S = profileSrc(*CP, EquivalenceStrategy::AllElements);
  EXPECT_GT(S->inputs().liveHeapInputs().size(), 1u);
}

TEST(InputTable, PayloadObjectsExcludedFromStructure) {
  auto CP = compile(R"(
    class Box { int v; }
    class Node { Node next; Box payload; }
    class Main {
      static void main() {
        Node list = null;
        for (int i = 0; i < 6; i++) {
          Node n = new Node();
          n.payload = new Box();
          n.next = list;
          list = n;
        }
        int c = 0;
        while (list != null) { c++; list = list.next; }
        print(c);
      }
    }
  )");
  auto S = profileSrc(*CP);
  ASSERT_EQ(S->inputs().liveHeapInputs().size(), 1u);
  const InputInfo &Info = S->inputs().info(S->inputs().liveHeapInputs()[0]);
  // Only the 6 Nodes; Boxes are payload, not structure.
  EXPECT_EQ(Info.Members.size(), 6u);
}

TEST(InputTable, WeaklyConnectedTraversalStillOneInput) {
  // A directed list traversed from the middle snapshots only a suffix;
  // SomeElements still identifies it with the whole structure.
  auto CP = compile(R"(
    class Node { Node next; }
    class Main {
      static void main() {
        Node head = null;
        for (int i = 0; i < 8; i++) {
          Node n = new Node();
          n.next = head;
          head = n;
        }
        // Walk from the middle.
        Node mid = head.next.next.next;
        int c = 0;
        while (mid != null) { c++; mid = mid.next; }
        print(c);
      }
    }
  )");
  auto S = profileSrc(*CP);
  EXPECT_EQ(S->inputs().liveHeapInputs().size(), 1u);
}

TEST(InputTable, SnapshotCountIsBounded) {
  // The membership fast path means construction takes O(1) snapshots per
  // structure, not one per access.
  auto CP = compile(R"(
    class Node { Node next; }
    class Main {
      static void main() {
        Node list = null;
        for (int i = 0; i < 50; i++) {
          Node x = new Node();
          x.next = list;
          list = x;
        }
        list = null;
      }
    }
  )");
  auto S = profileSrc(*CP);
  // First-access snapshot + per-activation first-touch + exit remeasure:
  // a small constant, certainly below one per element.
  EXPECT_LT(S->inputs().snapshotsTaken(), 25);
}

TEST(InputTable, MultiDimArraySizeCountsAllLevels) {
  // Paper Sec. 3.4: new int[][]{new int[0], new int[1], new int[2]} has
  // size 3 + (0+1+2).
  auto CP = compile(R"(
    class Main {
      static void main() {
        int[][] a = new int[3][];
        a[0] = new int[0];
        a[1] = new int[1];
        a[2] = new int[2];
        a[1][0] = 100;
        a[2][0] = 200;
        a[2][1] = 300;
        // Finish with reads of the outer array only, so the exit
        // remeasure starts at the outer level and sees all levels.
        int c = 0;
        for (int i = 0; i < a.length; i++) {
          if (a[i] != null) { c++; }
        }
        print(c);
      }
    }
  )");
  auto S = profileSrc(*CP);
  ASSERT_GE(S->inputs().liveHeapInputs().size(), 1u);
  // Find the outer array input and check its capacity measure.
  int64_t MaxCap = 0;
  const RepetitionTree &T = S->tree();
  T.forEach([&](const RepetitionNode &N) {
    for (const InvocationRecord &R : N.History)
      for (const auto &[Id, Use] : R.Inputs) {
        (void)Id;
        MaxCap = std::max(MaxCap, Use.MaxCapacity);
      }
  });
  // Accesses happen at root level (no loops) — check via the root.
  for (const InvocationRecord &R : T.root().History)
    for (const auto &[Id, Use] : R.Inputs) {
      (void)Id;
      MaxCap = std::max(MaxCap, Use.MaxCapacity);
    }
  EXPECT_EQ(MaxCap, 3 + 0 + 1 + 2);
}

} // namespace

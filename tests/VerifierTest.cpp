//===- tests/VerifierTest.cpp - Bytecode verifier tests -------------------===//

#include "TestUtil.h"
#include "bytecode/Verifier.h"
#include "programs/Programs.h"
#include "programs/Table1Check.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::bc;
using namespace algoprof::testutil;

namespace {

/// A minimal module holding one static method "T.f" for negative tests.
Module tiny(std::vector<Instr> Code, int NumLocals = 2) {
  Module M;
  M.IntTypeId = 0;
  M.Types.push_back({RtTypeKind::Int, -1, -1});
  M.BoolTypeId = 1;
  M.Types.push_back({RtTypeKind::Bool, -1, -1});
  ClassInfo C;
  C.Id = 0;
  C.Name = "T";
  C.Type = 2;
  M.Types.push_back({RtTypeKind::Class, 0, -1});
  M.Classes.push_back(C);
  MethodInfo F;
  F.Id = 0;
  F.ClassId = 0;
  F.Name = "f";
  F.IsStatic = true;
  F.NumArgs = 0;
  F.NumLocals = NumLocals;
  F.ReturnsValue = false;
  F.QualifiedName = "T.f";
  F.Code = std::move(Code);
  M.Methods.push_back(std::move(F));
  return M;
}

bool hasProblem(const std::vector<std::string> &Problems,
                const std::string &Needle) {
  for (const std::string &P : Problems)
    if (P.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(Verifier, CompilerOutputVerifies) {
  for (const std::string &Src : {
           programs::insertionSortProgram(30, 10, 1,
                                          programs::InputOrder::Random),
           programs::functionalSortProgram(30, 10, 1,
                                           programs::InputOrder::Random),
           programs::mergeSortProgram(30, 10, 1,
                                      programs::InputOrder::Random),
           programs::arrayListProgram(false, 16, 8),
           programs::bstProgram(32, 16),
           programs::binarySearchProgram(32, 16),
           programs::listing4Program(8),
           programs::listing5Program(4, 4),
           programs::ioSumProgram(),
       }) {
    auto CP = compile(Src);
    ASSERT_TRUE(CP);
    std::vector<std::string> Problems = verifyModule(*CP->Mod);
    EXPECT_TRUE(Problems.empty())
        << Problems.front() << " (+" << Problems.size() - 1 << " more)";
  }
}

TEST(Verifier, AllTable1ProgramsVerify) {
  for (const programs::Table1Program &P : programs::table1Programs()) {
    auto CP = compile(P.Source);
    ASSERT_TRUE(CP) << P.Name;
    EXPECT_TRUE(verifyModule(*CP->Mod).empty()) << P.Name;
  }
}

TEST(Verifier, DetectsMissingTerminator) {
  Module M = tiny({{Opcode::IConst, 0, 0, 1}, {Opcode::Pop, 0, 0, 0}});
  EXPECT_TRUE(hasProblem(verifyMethod(M, M.Methods[0]),
                         "does not end in a terminator"));
}

TEST(Verifier, DetectsBranchOutOfRange) {
  Module M = tiny({{Opcode::Goto, 99, 0, 0}, {Opcode::Ret, 0, 0, 0}});
  EXPECT_TRUE(hasProblem(verifyMethod(M, M.Methods[0]),
                         "branch target 99 out of range"));
}

TEST(Verifier, DetectsStackUnderflow) {
  Module M = tiny({{Opcode::Pop, 0, 0, 0}, {Opcode::Ret, 0, 0, 0}});
  EXPECT_TRUE(hasProblem(verifyMethod(M, M.Methods[0]),
                         "operand stack underflow"));
}

TEST(Verifier, DetectsInconsistentJoinDepth) {
  // One path pushes a value before the join, the other does not.
  Module M = tiny({
      /*0*/ {Opcode::IConst, 0, 0, 1},
      /*1*/ {Opcode::IfTrue, 4, 0, 0},
      /*2*/ {Opcode::IConst, 0, 0, 7}, // Depth 1 at the join...
      /*3*/ {Opcode::Goto, 4, 0, 0},
      /*4*/ {Opcode::Ret, 0, 0, 0},    // ...but 0 via the branch.
  });
  EXPECT_TRUE(hasProblem(verifyMethod(M, M.Methods[0]),
                         "inconsistent stack depth"));
}

TEST(Verifier, DetectsBadLocalSlot) {
  Module M = tiny({{Opcode::Load, 5, 0, 0}, {Opcode::Ret, 0, 0, 0}},
                  /*NumLocals=*/2);
  EXPECT_TRUE(
      hasProblem(verifyMethod(M, M.Methods[0]), "out of range"));
}

TEST(Verifier, DetectsBadFieldAndClassIds) {
  Module M = tiny({
      {Opcode::NewObject, 7, 0, 0},
      {Opcode::GetField, 3, 0, 0},
      {Opcode::Pop, 0, 0, 0},
      {Opcode::Ret, 0, 0, 0},
  });
  auto Problems = verifyMethod(M, M.Methods[0]);
  EXPECT_TRUE(hasProblem(Problems, "invalid class id 7"));
  EXPECT_TRUE(hasProblem(Problems, "invalid field id 3"));
}

TEST(Verifier, DetectsNonArrayNewArrayType) {
  Module M = tiny({
      {Opcode::IConst, 0, 0, 3},
      {Opcode::NewArray, /*IntTypeId=*/0, 0, 0},
      {Opcode::Pop, 0, 0, 0},
      {Opcode::Ret, 0, 0, 0},
  });
  EXPECT_TRUE(hasProblem(verifyMethod(M, M.Methods[0]),
                         "invalid array type"));
}

TEST(Verifier, DetectsUnbalancedReturnPath) {
  // RetVal with nothing on the stack underflows.
  Module M = tiny({{Opcode::RetVal, 0, 0, 0}});
  EXPECT_TRUE(hasProblem(verifyMethod(M, M.Methods[0]),
                         "operand stack underflow"));
}

} // namespace

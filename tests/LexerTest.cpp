//===- tests/LexerTest.cpp - Lexer unit tests -----------------------------===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace algoprof;

namespace {

std::vector<Token> lex(const std::string &Src, DiagnosticEngine &Diags) {
  Lexer L(Src, Diags);
  return L.lexAll();
}

std::vector<TokenKind> kinds(const std::string &Src) {
  DiagnosticEngine Diags;
  std::vector<TokenKind> Ks;
  for (const Token &T : lex(Src, Diags))
    Ks.push_back(T.Kind);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Ks;
}

TEST(Lexer, EmptyInput) {
  EXPECT_EQ(kinds(""), std::vector<TokenKind>{TokenKind::EndOfFile});
}

TEST(Lexer, Keywords) {
  auto Ks = kinds("class extends static int boolean void if else while "
                  "for return new this null true false break continue");
  std::vector<TokenKind> Expected = {
      TokenKind::KW_Class,   TokenKind::KW_Extends, TokenKind::KW_Static,
      TokenKind::KW_Int,     TokenKind::KW_Boolean, TokenKind::KW_Void,
      TokenKind::KW_If,      TokenKind::KW_Else,    TokenKind::KW_While,
      TokenKind::KW_For,     TokenKind::KW_Return,  TokenKind::KW_New,
      TokenKind::KW_This,    TokenKind::KW_Null,    TokenKind::KW_True,
      TokenKind::KW_False,   TokenKind::KW_Break,   TokenKind::KW_Continue,
      TokenKind::EndOfFile};
  EXPECT_EQ(Ks, Expected);
}

TEST(Lexer, IdentifiersAndLiterals) {
  DiagnosticEngine Diags;
  auto Toks = lex("foo _bar x1 42 0", Diags);
  ASSERT_EQ(Toks.size(), 6u);
  EXPECT_EQ(Toks[0].Text, "foo");
  EXPECT_EQ(Toks[1].Text, "_bar");
  EXPECT_EQ(Toks[2].Text, "x1");
  EXPECT_EQ(Toks[3].IntValue, 42);
  EXPECT_EQ(Toks[4].IntValue, 0);
}

TEST(Lexer, Operators) {
  auto Ks = kinds("+ - * / % ! < <= > >= == != && || ++ -- = . , ;");
  std::vector<TokenKind> Expected = {
      TokenKind::Plus,       TokenKind::Minus,      TokenKind::Star,
      TokenKind::Slash,      TokenKind::Percent,    TokenKind::Bang,
      TokenKind::Less,       TokenKind::LessEqual,  TokenKind::Greater,
      TokenKind::GreaterEqual, TokenKind::EqualEqual, TokenKind::BangEqual,
      TokenKind::AmpAmp,     TokenKind::PipePipe,   TokenKind::PlusPlus,
      TokenKind::MinusMinus, TokenKind::Assign,     TokenKind::Dot,
      TokenKind::Comma,      TokenKind::Semi,       TokenKind::EndOfFile};
  EXPECT_EQ(Ks, Expected);
}

TEST(Lexer, PlusPlusGreedy) {
  // "+++" lexes as "++" "+".
  auto Ks = kinds("+++");
  std::vector<TokenKind> Expected = {TokenKind::PlusPlus, TokenKind::Plus,
                                     TokenKind::EndOfFile};
  EXPECT_EQ(Ks, Expected);
}

TEST(Lexer, Comments) {
  auto Ks = kinds("a // line comment\n b /* block \n comment */ c");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Identifier, TokenKind::Identifier,
      TokenKind::EndOfFile};
  EXPECT_EQ(Ks, Expected);
}

TEST(Lexer, UnterminatedBlockComment) {
  DiagnosticEngine Diags;
  lex("a /* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, LineAndColumnTracking) {
  DiagnosticEngine Diags;
  auto Toks = lex("a\n  bb\n    c", Diags);
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Loc.Line, 1);
  EXPECT_EQ(Toks[0].Loc.Col, 1);
  EXPECT_EQ(Toks[1].Loc.Line, 2);
  EXPECT_EQ(Toks[1].Loc.Col, 3);
  EXPECT_EQ(Toks[2].Loc.Line, 3);
  EXPECT_EQ(Toks[2].Loc.Col, 5);
}

TEST(Lexer, UnexpectedCharacterRecovers) {
  DiagnosticEngine Diags;
  auto Toks = lex("a # b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // Both identifiers still lex.
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
}

TEST(Lexer, IntLiteralOverflow) {
  DiagnosticEngine Diags;
  lex("99999999999999999999999999", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, SingleAmpIsError) {
  DiagnosticEngine Diags;
  lex("a & b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

} // namespace

//===- tests/LoopEventsTest.cpp - Loop event delivery ---------------------===//
//
// Verifies the VM's loop instrumentation contract: enters, back edges,
// and exits balance exactly — including break, continue, early return,
// and trap unwinding (the paper's exceptional control flow rule).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <map>

using namespace algoprof;
using namespace algoprof::testutil;

namespace {

struct EventCounts {
  int64_t Enters = 0;
  int64_t BackEdges = 0;
  int64_t Exits = 0;
};

class RecordingListener : public vm::ExecutionListener {
public:
  std::map<std::pair<int32_t, int32_t>, EventCounts> Loops;
  std::map<int32_t, int64_t> MethodEnters, MethodExits;
  std::vector<std::string> Trace;

  void onLoopEnter(int32_t M, int32_t L) override {
    ++Loops[{M, L}].Enters;
    Trace.push_back("enter " + std::to_string(M) + ":" + std::to_string(L));
  }
  void onLoopBackEdge(int32_t M, int32_t L) override {
    ++Loops[{M, L}].BackEdges;
  }
  void onLoopExit(int32_t M, int32_t L) override {
    ++Loops[{M, L}].Exits;
    Trace.push_back("exit " + std::to_string(M) + ":" + std::to_string(L));
  }
  void onMethodEnter(int32_t M) override { ++MethodEnters[M]; }
  void onMethodExit(int32_t M) override { ++MethodExits[M]; }
};

struct Profiled {
  RecordingListener Listener;
  vm::RunResult Result;
};

Profiled runWithListener(const std::string &Src) {
  Profiled P;
  auto CP = compile(Src);
  if (!CP)
    return P;
  vm::Interpreter Interp(CP->Prep);
  vm::InstrumentationPlan Plan = vm::InstrumentationPlan::all(*CP->Mod);
  vm::IoChannels Io;
  int32_t Entry = CP->entryMethod("Main", "main");
  EXPECT_GE(Entry, 0);
  P.Result = Interp.run(Entry, &P.Listener, Plan, Io);
  return P;
}

EventCounts totals(const Profiled &P) {
  EventCounts Sum;
  for (const auto &[Key, C] : P.Listener.Loops) {
    (void)Key;
    Sum.Enters += C.Enters;
    Sum.BackEdges += C.BackEdges;
    Sum.Exits += C.Exits;
  }
  return Sum;
}

TEST(LoopEvents, SimpleForLoop) {
  Profiled P = runWithListener(R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 7; i++) { s = s + i; }
        print(s);
      }
    }
  )");
  ASSERT_TRUE(P.Result.ok()) << P.Result.TrapMessage;
  EventCounts T = totals(P);
  EXPECT_EQ(T.Enters, 1);
  EXPECT_EQ(T.BackEdges, 7); // One per completed iteration.
  EXPECT_EQ(T.Exits, 1);
}

TEST(LoopEvents, ZeroIterationLoop) {
  Profiled P = runWithListener(R"(
    class Main {
      static void main() {
        int n = 0;
        while (n > 0) { n--; }
        print(n);
      }
    }
  )");
  ASSERT_TRUE(P.Result.ok());
  EventCounts T = totals(P);
  EXPECT_EQ(T.Enters, 1);
  EXPECT_EQ(T.BackEdges, 0);
  EXPECT_EQ(T.Exits, 1);
}

TEST(LoopEvents, NestedLoopListing3) {
  // Paper Listing 3: outer 3 iterations + inner 0+1+2 = 6 total steps.
  Profiled P = runWithListener(R"(
    class Main {
      static void main() {
        for (int o = 0; o < 3; o++) {
          for (int i = 0; i < o; i++) {
          }
        }
      }
    }
  )");
  ASSERT_TRUE(P.Result.ok());
  EventCounts T = totals(P);
  EXPECT_EQ(T.BackEdges, 3 + 0 + 1 + 2);
  // Inner loop entered once per outer iteration.
  EXPECT_EQ(T.Enters, 1 + 3);
  EXPECT_EQ(T.Exits, 1 + 3);
}

TEST(LoopEvents, BreakFiresExit) {
  Profiled P = runWithListener(R"(
    class Main {
      static void main() {
        int i = 0;
        while (true) {
          i++;
          if (i == 4) { break; }
        }
        print(i);
      }
    }
  )");
  ASSERT_TRUE(P.Result.ok());
  EventCounts T = totals(P);
  EXPECT_EQ(T.Enters, 1);
  EXPECT_EQ(T.Exits, 1);
  EXPECT_EQ(T.BackEdges, 3); // Three completed iterations before break.
}

TEST(LoopEvents, ContinueCountsAsBackEdge) {
  Profiled P = runWithListener(R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 6; i++) {
          if (i % 2 == 0) { continue; }
          s = s + i;
        }
        print(s);
      }
    }
  )");
  ASSERT_TRUE(P.Result.ok());
  EventCounts T = totals(P);
  EXPECT_EQ(T.BackEdges, 6);
  EXPECT_EQ(T.Enters, 1);
  EXPECT_EQ(T.Exits, 1);
}

TEST(LoopEvents, BreakOutOfNestedLoopsExitsBoth) {
  Profiled P = runWithListener(R"(
    class Main {
      static void main() {
        int found = 0;
        for (int i = 0; i < 3 && found == 0; i++) {
          for (int j = 0; j < 3; j++) {
            if (i * 3 + j == 4) {
              found = 1;
              break;
            }
          }
        }
        print(found);
      }
    }
  )");
  ASSERT_TRUE(P.Result.ok());
  EventCounts T = totals(P);
  EXPECT_EQ(T.Enters, T.Exits); // Fully balanced.
}

TEST(LoopEvents, ReturnInsideLoopFiresExits) {
  Profiled P = runWithListener(R"(
    class Main {
      static int find() {
        for (int i = 0; i < 10; i++) {
          for (int j = 0; j < 10; j++) {
            if (i + j == 5) { return i * 10 + j; }
          }
        }
        return -1;
      }
      static void main() { print(find()); }
    }
  )");
  ASSERT_TRUE(P.Result.ok());
  EventCounts T = totals(P);
  EXPECT_EQ(T.Enters, T.Exits);
}

TEST(LoopEvents, TrapUnwindingBalancesEvents) {
  Profiled P = runWithListener(R"(
    class Main {
      static void boom() {
        int[] a = new int[2];
        for (int i = 0; i < 5; i++) {
          a[i] = i; // Out of bounds at i == 2.
        }
      }
      static void main() {
        for (int r = 0; r < 3; r++) {
          boom();
        }
      }
    }
  )");
  EXPECT_EQ(P.Result.Status, vm::RunStatus::Trapped);
  EventCounts T = totals(P);
  EXPECT_EQ(T.Enters, T.Exits); // Unwinding closed every open loop.
}

TEST(LoopEvents, MethodEntersBalanceExitsOnTrap) {
  Profiled P = runWithListener(R"(
    class Main {
      static void depth(int n) {
        if (n == 0) {
          int z = 0;
          print(1 / z);
        }
        depth(n - 1);
      }
      static void main() { depth(3); }
    }
  )");
  EXPECT_EQ(P.Result.Status, vm::RunStatus::Trapped);
  int64_t Enters = 0, Exits = 0;
  for (const auto &[M, C] : P.Listener.MethodEnters) {
    (void)M;
    Enters += C;
  }
  for (const auto &[M, C] : P.Listener.MethodExits) {
    (void)M;
    Exits += C;
  }
  EXPECT_EQ(Enters, Exits);
}

TEST(LoopEvents, LoopAtMethodEntry) {
  // A method whose body starts with a while loop: the loop header is
  // pc 0, so entry events fire on method entry.
  Profiled P = runWithListener(R"(
    class Main {
      static int count(int n) {
        while (n > 0) { n--; }
        return n;
      }
      static void main() { print(count(5)); }
    }
  )");
  ASSERT_TRUE(P.Result.ok());
  EventCounts T = totals(P);
  EXPECT_EQ(T.Enters, 1);
  EXPECT_EQ(T.BackEdges, 5);
  EXPECT_EQ(T.Exits, 1);
}

TEST(LoopEvents, EnterExitProperlyNested) {
  Profiled P = runWithListener(R"(
    class Main {
      static void main() {
        for (int i = 0; i < 2; i++) {
          for (int j = 0; j < 2; j++) {
            print(i * 2 + j);
          }
        }
      }
    }
  )");
  ASSERT_TRUE(P.Result.ok());
  // The trace must be balanced like parentheses.
  std::vector<std::string> Stack;
  for (const std::string &Ev : P.Listener.Trace) {
    if (Ev.rfind("enter ", 0) == 0) {
      Stack.push_back(Ev.substr(6));
    } else {
      ASSERT_FALSE(Stack.empty()) << "exit without enter: " << Ev;
      EXPECT_EQ(Stack.back(), Ev.substr(5));
      Stack.pop_back();
    }
  }
  EXPECT_TRUE(Stack.empty());
}

} // namespace

//===- tests/SnapshotModeTest.cpp - Eager vs tracked sizing ---------------===//

#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

std::map<std::string, int64_t>
maxSizesByNode(const std::string &Src, SnapshotMode Mode) {
  auto CP = compile(Src);
  EXPECT_TRUE(CP);
  SessionOptions Opts;
  Opts.Profile.Snapshots = Mode;
  ProfileSession S(*CP, Opts);
  EXPECT_TRUE(S.run("Main", "main").ok());
  std::map<std::string, int64_t> Sizes;
  S.tree().forEach([&](const RepetitionNode &N) {
    for (const InvocationRecord &R : N.History)
      for (const auto &[Id, Use] : R.Inputs) {
        (void)Id;
        Sizes[N.Name] = std::max(Sizes[N.Name], Use.MaxSize);
      }
  });
  return Sizes;
}

TEST(SnapshotMode, TrackedMatchesEagerOnGrowOnlyWorkload) {
  // For grow-only structures the tracked membership count equals the
  // paper's max-size rule exactly.
  std::string Src = programs::insertionSortProgram(
      40, 10, 2, programs::InputOrder::Random);
  auto Eager = maxSizesByNode(Src, SnapshotMode::Eager);
  auto Tracked = maxSizesByNode(Src, SnapshotMode::Tracked);
  ASSERT_FALSE(Eager.empty());
  for (const auto &[Node, Size] : Eager)
    EXPECT_EQ(Tracked[Node], Size) << Node;
}

TEST(SnapshotMode, TrackedTakesFewerSnapshots) {
  std::string Src = programs::insertionSortProgram(
      60, 10, 2, programs::InputOrder::Random);
  auto CP = compile(Src);
  ASSERT_TRUE(CP);

  SessionOptions EagerOpts;
  ProfileSession EagerS(*CP, EagerOpts);
  ASSERT_TRUE(EagerS.run("Main", "main").ok());

  SessionOptions TrackedOpts;
  TrackedOpts.Profile.Snapshots = SnapshotMode::Tracked;
  ProfileSession TrackedS(*CP, TrackedOpts);
  ASSERT_TRUE(TrackedS.run("Main", "main").ok());

  EXPECT_LT(TrackedS.inputs().snapshotsTaken(),
            EagerS.inputs().snapshotsTaken() / 4);
}

TEST(SnapshotMode, FitsAgreeAcrossModes) {
  std::string Src = programs::insertionSortProgram(
      80, 10, 3, programs::InputOrder::Random);
  for (SnapshotMode Mode :
       {SnapshotMode::Eager, SnapshotMode::Tracked}) {
    auto CP = compile(Src);
    ASSERT_TRUE(CP);
    SessionOptions Opts;
    Opts.Profile.Snapshots = Mode;
    ProfileSession S(*CP, Opts);
    ASSERT_TRUE(S.run("Main", "main").ok());
    for (const AlgorithmProfile &AP : S.buildProfiles()) {
      if (AP.Algo.Root->Name != "List.sort loop#0")
        continue;
      const auto *Ser = AP.primarySeries();
      ASSERT_NE(Ser, nullptr) << snapshotModeName(Mode);
      EXPECT_NEAR(Ser->Fit.growthExponent(), 2.0, 0.3)
          << snapshotModeName(Mode);
    }
  }
}

} // namespace

//===- tests/SnapshotModeTest.cpp - Eager vs tracked sizing ---------------===//

#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

std::map<std::string, int64_t>
maxSizesByNode(const std::string &Src, SnapshotMode Mode) {
  auto CP = compile(Src);
  EXPECT_TRUE(CP);
  SessionOptions Opts;
  Opts.Profile.Snapshots = Mode;
  ProfileSession S(*CP, Opts);
  EXPECT_TRUE(S.run("Main", "main").ok());
  std::map<std::string, int64_t> Sizes;
  S.tree().forEach([&](const RepetitionNode &N) {
    for (const InvocationRecord &R : N.History)
      for (const auto &[Id, Use] : R.Inputs) {
        (void)Id;
        Sizes[N.Name] = std::max(Sizes[N.Name], Use.MaxSize);
      }
  });
  return Sizes;
}

TEST(SnapshotMode, TrackedMatchesEagerOnGrowOnlyWorkload) {
  // For grow-only structures the tracked membership count equals the
  // paper's max-size rule exactly.
  std::string Src = programs::insertionSortProgram(
      40, 10, 2, programs::InputOrder::Random);
  auto Eager = maxSizesByNode(Src, SnapshotMode::Eager);
  auto Tracked = maxSizesByNode(Src, SnapshotMode::Tracked);
  ASSERT_FALSE(Eager.empty());
  for (const auto &[Node, Size] : Eager)
    EXPECT_EQ(Tracked[Node], Size) << Node;
}

TEST(SnapshotMode, TrackedTakesFewerSnapshots) {
  std::string Src = programs::insertionSortProgram(
      60, 10, 2, programs::InputOrder::Random);
  auto CP = compile(Src);
  ASSERT_TRUE(CP);

  SessionOptions EagerOpts;
  ProfileSession EagerS(*CP, EagerOpts);
  ASSERT_TRUE(EagerS.run("Main", "main").ok());

  SessionOptions TrackedOpts;
  TrackedOpts.Profile.Snapshots = SnapshotMode::Tracked;
  ProfileSession TrackedS(*CP, TrackedOpts);
  ASSERT_TRUE(TrackedS.run("Main", "main").ok());

  EXPECT_LT(TrackedS.inputs().snapshotsTaken(),
            EagerS.inputs().snapshotsTaken() / 4);
}

TEST(SnapshotMode, FitsAgreeAcrossModes) {
  std::string Src = programs::insertionSortProgram(
      80, 10, 3, programs::InputOrder::Random);
  for (SnapshotMode Mode :
       {SnapshotMode::Eager, SnapshotMode::Tracked}) {
    auto CP = compile(Src);
    ASSERT_TRUE(CP);
    SessionOptions Opts;
    Opts.Profile.Snapshots = Mode;
    ProfileSession S(*CP, Opts);
    ASSERT_TRUE(S.run("Main", "main").ok());
    for (const AlgorithmProfile &AP : S.buildProfiles()) {
      if (AP.Algo.Root->Name != "List.sort loop#0")
        continue;
      const auto *Ser = AP.primarySeries();
      ASSERT_NE(Ser, nullptr) << snapshotModeName(Mode);
      EXPECT_NEAR(Ser->Fit.growthExponent(), 2.0, 0.3)
          << snapshotModeName(Mode);
    }
  }
}

TEST(SnapshotMode, TrackedSizesAreRunScoped) {
  // Two identical runs must record identical tracked sizes even when
  // the equivalence strategy unifies their inputs: measurement counters
  // reset at program start (InputTable::beginRun), so the second run is
  // sized from its own heap, not from the first run's accumulated value
  // set (fuzzer-found, seed 0xa190f17 case 8837).
  const char *Src = R"(
    class Main {
      static void main() {
        int i = 0;
        while (i < 4) {
          int[] b = new int[2];
          b[0] = 0;
          i = i + 1;
        }
        int[] a = new int[5];
        a[0] = 9;
      }
    }
  )";
  auto CP = compile(Src);
  ASSERT_TRUE(CP);
  SessionOptions Opts;
  Opts.Profile.Equivalence = EquivalenceStrategy::SameType;
  Opts.Profile.Snapshots = SnapshotMode::Tracked;
  ProfileSession S(*CP, Opts);
  ASSERT_TRUE(S.run("Main", "main").ok());
  ASSERT_TRUE(S.run("Main", "main").ok());
  bool SawLoop = false;
  S.tree().forEach([&](const RepetitionNode &N) {
    if (N.History.size() != 2)
      return;
    SawLoop = true;
    const InvocationRecord &R0 = N.History[0];
    const InvocationRecord &R1 = N.History[1];
    ASSERT_EQ(R0.Inputs.size(), R1.Inputs.size()) << N.Name;
    auto It0 = R0.Inputs.begin();
    auto It1 = R1.Inputs.begin();
    for (; It0 != R0.Inputs.end(); ++It0, ++It1)
      EXPECT_EQ(It0->second.MaxSize, It1->second.MaxSize) << N.Name;
  });
  EXPECT_TRUE(SawLoop);
}

} // namespace

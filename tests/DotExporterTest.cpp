//===- tests/DotExporterTest.cpp - Graphviz export ------------------------===//

#include "TestUtil.h"
#include "cct/CctProfiler.h"
#include "programs/Programs.h"
#include "report/DotExporter.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

TEST(DotExporter, RepetitionTreeStructure) {
  auto CP = compile(programs::insertionSortProgram(
      60, 10, 2, programs::InputOrder::Random));
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  ASSERT_TRUE(S.run("Main", "main").ok());
  std::vector<AlgorithmProfile> Profiles = S.buildProfiles();

  std::string Dot = report::repetitionTreeToDot(S.tree(), Profiles);
  EXPECT_NE(Dot.find("digraph repetition_tree"), std::string::npos);
  // One cluster per algorithm.
  EXPECT_NE(Dot.find("subgraph cluster_"), std::string::npos);
  EXPECT_NE(Dot.find("List.sort loop#0"), std::string::npos);
  EXPECT_NE(Dot.find("Modification of a Node-based recursive structure"),
            std::string::npos);
  EXPECT_NE(Dot.find("steps = "), std::string::npos);
  // Balanced braces (well-formed DOT).
  EXPECT_EQ(std::count(Dot.begin(), Dot.end(), '{'),
            std::count(Dot.begin(), Dot.end(), '}'));
  // Edge count == nodes - 1 (it is a tree, root included).
  int Nodes = S.tree().numRepetitions() + 1;
  EXPECT_EQ(std::count(Dot.begin(), Dot.end(), '>'),
            Nodes - 1); // "->" once per edge.
}

TEST(DotExporter, CctStructure) {
  auto CP = compile(R"(
    class Main {
      static void leaf() { }
      static void main() { leaf(); leaf(); }
    }
  )");
  ASSERT_TRUE(CP);
  cct::CctProfiler Profiler(*CP->Mod);
  vm::Interpreter Interp(CP->Prep);
  vm::InstrumentationPlan Plan = vm::InstrumentationPlan::all(*CP->Mod);
  vm::IoChannels Io;
  ASSERT_TRUE(
      Interp.run(CP->entryMethod("Main", "main"), &Profiler, Plan, Io)
          .ok());

  std::string Dot = report::cctToDot(Profiler);
  EXPECT_NE(Dot.find("digraph cct"), std::string::npos);
  EXPECT_NE(Dot.find("Main.main"), std::string::npos);
  EXPECT_NE(Dot.find("Main.leaf"), std::string::npos);
  EXPECT_NE(Dot.find("calls=2"), std::string::npos);
  EXPECT_EQ(std::count(Dot.begin(), Dot.end(), '{'),
            std::count(Dot.begin(), Dot.end(), '}'));
}

TEST(DotExporter, EscapesQuotes) {
  // No MiniJ name contains quotes today, but the escaper must be safe.
  prof::RepetitionTree Tree;
  std::string Dot = report::repetitionTreeToDot(Tree, {});
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
}

} // namespace

#!/usr/bin/env bash
# bench_parallel_sweep's speedup field, both branches:
#
#   - single-core box: the bench must print the "single hardware
#     thread" warning and stamp `"speedup": null` in the JSON report
#     (a measured ~1x figure there would be noise presented as data);
#   - multi-core box: no warning, and every sweep entry carries a
#     numeric speedup.
#
# Usage: bench_speedup_test.sh <bench_parallel_sweep-binary>
set -euo pipefail

BENCH=${1:?usage: bench_speedup_test.sh <bench_parallel_sweep-binary>}
BENCH=$(realpath "$BENCH") # Survive the cd below when given relatively.

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK" # The bench writes bench_parallel_sweep.json into its CWD.

out=$("$BENCH" 2>&1) || { echo "bench failed:"; echo "$out"; exit 1; }
[ -f bench_parallel_sweep.json ] || {
  echo "FAIL: bench_parallel_sweep.json was not written"
  exit 1
}

cores=$(nproc)
if [ "$cores" -le 1 ]; then
  case "$out" in
    *"single hardware thread"*) ;;
    *)
      echo "FAIL: single-core run did not print the speedup warning"
      echo "$out"
      exit 1
      ;;
  esac
  grep -q '"speedup": null' bench_parallel_sweep.json || {
    echo 'FAIL: single-core JSON lacks "speedup": null'
    cat bench_parallel_sweep.json
    exit 1
  }
  if grep -q '"speedup": [0-9]' bench_parallel_sweep.json; then
    echo "FAIL: single-core JSON records a numeric speedup"
    cat bench_parallel_sweep.json
    exit 1
  fi
else
  case "$out" in
    *"single hardware thread"*)
      echo "FAIL: multi-core run printed the single-core warning"
      exit 1
      ;;
  esac
  if grep -q '"speedup": null' bench_parallel_sweep.json; then
    echo "FAIL: multi-core JSON recorded a null speedup"
    cat bench_parallel_sweep.json
    exit 1
  fi
  grep -q '"speedup": [0-9]' bench_parallel_sweep.json || {
    echo "FAIL: multi-core JSON lacks numeric speedups"
    cat bench_parallel_sweep.json
    exit 1
  }
fi

grep -q '"profiles_match": true' bench_parallel_sweep.json || {
  echo "FAIL: profiles diverged"
  cat bench_parallel_sweep.json
  exit 1
}
echo "PASS: speedup reporting matches this machine ($cores core(s))"

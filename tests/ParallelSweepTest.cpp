//===- tests/ParallelSweepTest.cpp - Serial vs sharded sweeps -------------===//
///
/// \file
/// Differential tests for parallel::SweepEngine: a sharded sweep at any
/// thread count must produce the same algorithm profiles — labels,
/// per-input classifications, series points, fitted formulas — as a
/// serial ProfileSession executing the same runs in the same order, and
/// the same repetition-tree structure and live-input contents. The
/// comparisons are string signatures (tests/SweepTestUtil.h) so a
/// mismatch prints both sides.
///
//===----------------------------------------------------------------------===//

#include "SweepTestUtil.h"
#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::programs;

namespace {

struct Sigs {
  std::string Profiles;
  std::string Tree;
  std::string Inputs;

  bool operator==(const Sigs &O) const {
    return Profiles == O.Profiles && Tree == O.Tree && Inputs == O.Inputs;
  }
};

/// Drives a serial accumulating session over \p Runs (one I/O input
/// vector per run) and renders its signatures.
Sigs serialSigs(const CompiledProgram &CP, const SessionOptions &SO,
                const std::vector<std::vector<int64_t>> &Runs,
                GroupingStrategy G = GroupingStrategy::CommonInput) {
  ProfileSession S(CP, SO);
  for (const std::vector<int64_t> &In : Runs) {
    vm::IoChannels Io;
    Io.Input = In;
    vm::RunResult R = S.run("Main", "main", Io);
    EXPECT_TRUE(R.ok()) << R.TrapMessage;
  }
  return {testutil::profileSignature(S.buildProfiles(G), S.inputs()),
          testutil::treeSignature(S.tree()),
          testutil::inputsSignature(S.inputs())};
}

/// Runs the same runs through the sweep engine at \p Threads workers.
Sigs sweepSigs(const CompiledProgram &CP, const SessionOptions &SO,
               int Threads, const std::vector<std::vector<int64_t>> &Runs,
               GroupingStrategy G = GroupingStrategy::CommonInput) {
  SessionOptions Sharded = SO;
  Sharded.Jobs = Threads;
  parallel::SweepEngine E(CP, Sharded);
  std::vector<vm::IoChannels> Ios(Runs.size());
  for (size_t I = 0; I < Runs.size(); ++I)
    Ios[I].Input = Runs[I];
  parallel::SweepResult SR = E.sweepWithInputs("Main", "main", Ios);
  EXPECT_TRUE(SR.allOk());
  return {testutil::profileSignature(E.buildProfiles(G), E.inputs()),
          testutil::treeSignature(E.tree()),
          testutil::inputsSignature(E.inputs())};
}

void expectSweepMatchesSerial(
    const std::string &Src, const std::vector<std::vector<int64_t>> &Runs,
    const SessionOptions &SO = SessionOptions(),
    GroupingStrategy G = GroupingStrategy::CommonInput) {
  auto CP = testutil::compile(Src);
  ASSERT_TRUE(CP);
  Sigs Serial = serialSigs(*CP, SO, Runs, G);
  ASSERT_FALSE(Serial.Tree.empty());
  for (int Threads : {1, 2, 8}) {
    Sigs Sweep = sweepSigs(*CP, SO, Threads, Runs, G);
    EXPECT_EQ(Serial.Profiles, Sweep.Profiles) << "threads=" << Threads;
    EXPECT_EQ(Serial.Tree, Sweep.Tree) << "threads=" << Threads;
    EXPECT_EQ(Serial.Inputs, Sweep.Inputs) << "threads=" << Threads;
  }
}

std::vector<std::vector<int64_t>> seedRuns(std::vector<int64_t> Seeds) {
  std::vector<std::vector<int64_t>> Runs;
  for (int64_t S : Seeds)
    Runs.push_back({S});
  return Runs;
}

TEST(ParallelSweepTest, SeededInsertionSortMatchesSerial) {
  // The Fig. 1 shape SweepEngine exists for: one list sorted per run,
  // list length delivered through the input channel.
  for (InputOrder Order :
       {InputOrder::Random, InputOrder::Sorted, InputOrder::Reversed})
    expectSweepMatchesSerial(seededInsertionSortProgram(Order),
                             seedRuns({0, 4, 8, 12, 16}));
}

TEST(ParallelSweepTest, RepeatedIdenticalRunsMatchSerial) {
  // Identical unseeded runs produce identical structures and identical
  // array values, so every run's inputs unify with earlier runs' —
  // maximum stress for the cross-run SomeElements replay.
  expectSweepMatchesSerial(insertionSortProgram(12, 4, 1, InputOrder::Random),
                           {{}, {}, {}});
}

TEST(ParallelSweepTest, CorpusMatchesSerial) {
  const std::vector<std::pair<const char *, std::string>> Corpus = {
      {"functionalSort", functionalSortProgram(12, 4, 1, InputOrder::Random)},
      {"mergeSort", mergeSortProgram(12, 4, 1, InputOrder::Random)},
      {"arrayListNaive", arrayListProgram(false, 12, 4)},
      {"arrayListDoubling", arrayListProgram(true, 16, 4)},
      {"binarySearch", binarySearchProgram(16, 4)},
      {"bst", bstProgram(16, 4)},
      {"listing4", listing4Program(8)},
      {"listing5", listing5Program(4, 5)},
  };
  for (const auto &[Name, Src] : Corpus) {
    SCOPED_TRACE(Name);
    expectSweepMatchesSerial(Src, {{}, {}});
  }
}

TEST(ParallelSweepTest, StreamProgramMatchesSerial) {
  // Stream pseudo-inputs must unify across shards by role, and the
  // pooled stream series must keep run order.
  expectSweepMatchesSerial(ioSumProgram(), {{1, 2, 3}, {4, 5}, {6}, {}});
}

TEST(ParallelSweepTest, EquivalenceStrategiesMatchSerial) {
  // SameType and SameArray have their own cross-run unification rules
  // (first live same-typed input; never unify). AllElements is exercised
  // on a structure-only program: disjoint heap snapshots can never be
  // element-equal across runs, which the merge reproduces by never
  // unifying heap inputs cross-run — the documented scope of its replay.
  for (EquivalenceStrategy Strategy :
       {EquivalenceStrategy::SameType, EquivalenceStrategy::SameArray,
        EquivalenceStrategy::AllElements}) {
    SCOPED_TRACE(equivalenceStrategyName(Strategy));
    SessionOptions SO;
    SO.Profile.Equivalence = Strategy;
    expectSweepMatchesSerial(seededInsertionSortProgram(InputOrder::Random),
                             seedRuns({3, 6, 9}), SO);
  }
}

TEST(ParallelSweepTest, TrackedSnapshotsMatchSerial) {
  SessionOptions SO;
  SO.Profile.Snapshots = SnapshotMode::Tracked;
  expectSweepMatchesSerial(seededInsertionSortProgram(InputOrder::Random),
                           seedRuns({4, 8, 12}), SO);
}

TEST(ParallelSweepTest, TrackedSizesDoNotLeakAcrossUnifiedRuns) {
  // Fuzzer-found (seed 0xa190f17, case 8837): under SameType every
  // run's int[] arrays unify into one input, and tracked sizing used to
  // read that input's *cumulative* value set — so a later run's loop,
  // storing only zeros, was sized by an earlier run's stored values.
  // Shards size per-run; so must the serial session. The loop below
  // stores zeros (never tracked as values), making its tracked size the
  // membership-count fallback; the non-zero store afterwards poisons
  // the cumulative value set for the next run.
  const char *Src = R"(
    class Main {
      static void main() {
        int i = 0;
        while (i < 4) {
          int[] b = new int[2];
          b[0] = 0;
          i = i + 1;
        }
        int[] a = new int[5];
        a[0] = 9;
      }
    }
  )";
  SessionOptions SO;
  SO.Profile.Equivalence = EquivalenceStrategy::SameType;
  SO.Profile.Snapshots = SnapshotMode::Tracked;
  expectSweepMatchesSerial(Src, {{}, {}, {}}, SO);
}

TEST(ParallelSweepTest, GroupingStrategiesMatchSerial) {
  for (GroupingStrategy G :
       {GroupingStrategy::SameMethod,
        GroupingStrategy::CommonInputPlusDataflow}) {
    expectSweepMatchesSerial(seededInsertionSortProgram(InputOrder::Random),
                             seedRuns({4, 8, 12}), SessionOptions(), G);
  }
}

TEST(ParallelSweepTest, RepeatedSweepsAreByteIdentical) {
  // Determinism across schedules: the same sweep at 8 threads, twice,
  // must be byte-identical (reduction happens after all workers join,
  // strictly in run-index order — scheduling cannot show through).
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);
  SessionOptions SO;
  std::vector<std::vector<int64_t>> Runs = seedRuns({0, 4, 8, 12, 16, 20});
  Sigs First = sweepSigs(*CP, SO, 8, Runs);
  for (int Rep = 0; Rep < 3; ++Rep)
    EXPECT_EQ(First, sweepSigs(*CP, SO, 8, Runs)) << "rep=" << Rep;
  EXPECT_EQ(First, sweepSigs(*CP, SO, 1, Runs));
}

TEST(ParallelSweepTest, SeedsApiMatchesExplicitChannels) {
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);
  SessionOptions SO;
  SO.Jobs = 2;
  SO.Seeds = {4, 8, 12};
  parallel::SweepEngine E(*CP, SO);
  parallel::SweepResult SR = E.sweep("Main", "main");
  EXPECT_TRUE(SR.allOk());
  EXPECT_EQ(SR.Runs.size(), 3u);
  Sigs ViaSeeds = {
      testutil::profileSignature(E.buildProfiles(), E.inputs()),
      testutil::treeSignature(E.tree()), testutil::inputsSignature(E.inputs())};
  EXPECT_EQ(ViaSeeds,
            sweepSigs(*CP, SessionOptions(), 2, seedRuns({4, 8, 12})));
}

TEST(ParallelSweepTest, SuccessiveSweepsAccumulateLikeSerial) {
  // Two sweep() batches on one engine must equal one serial session
  // over the concatenated runs: the engine's heap-id offset persists
  // across batches exactly like a serial session's ever-growing heap.
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);
  SessionOptions SO;
  SO.Jobs = 2;
  parallel::SweepEngine E(*CP, SO);
  for (std::vector<int64_t> Batch : {std::vector<int64_t>{4, 8},
                                     std::vector<int64_t>{12, 16}}) {
    std::vector<vm::IoChannels> Ios(Batch.size());
    for (size_t I = 0; I < Batch.size(); ++I)
      Ios[I].Input = {Batch[I]};
    EXPECT_TRUE(E.sweepWithInputs("Main", "main", Ios).allOk());
  }
  Sigs Batched = {
      testutil::profileSignature(E.buildProfiles(), E.inputs()),
      testutil::treeSignature(E.tree()), testutil::inputsSignature(E.inputs())};
  EXPECT_EQ(Batched, serialSigs(*CP, SessionOptions(),
                                seedRuns({4, 8, 12, 16})));
}

TEST(ParallelSweepTest, QuarantinedSweepMatchesSerialOverSurvivors) {
  // The degraded-merge guarantee (docs/resilience.md): a sweep that
  // quarantines runs under the Skip policy must produce the profile a
  // serial session produces over just the surviving seeds — object-id
  // offsets, input unification, series order, everything.
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);
  SessionOptions SO;
  SO.Jobs = 4;
  SO.Seeds = {0, 4, 8, 12, 16, 20};
  SO.Policy = resilience::FailurePolicy::Skip;
  std::string Err;
  ASSERT_TRUE(resilience::FaultPlan::parse("heap-oom@run2,run-start-fail@run4",
                                           SO.Faults, Err))
      << Err;
  parallel::SweepEngine E(*CP, SO);
  parallel::SweepResult SR = E.sweep("Main", "main");
  EXPECT_FALSE(SR.allOk());
  EXPECT_TRUE(SR.usable());
  EXPECT_EQ(SR.MergedRuns, 4);
  ASSERT_EQ(SR.Failures.size(), 2u);
  EXPECT_EQ(SR.Failures[0].Run, 2);
  EXPECT_EQ(SR.Failures[0].Status, vm::RunStatus::BudgetExceeded);
  EXPECT_EQ(SR.Failures[0].Budget, "heap_bytes");
  EXPECT_EQ(SR.Failures[1].Run, 4);
  for (const resilience::FailureInfo &FI : SR.Failures) {
    EXPECT_TRUE(FI.Quarantined);
    EXPECT_TRUE(FI.Injected);
    EXPECT_EQ(FI.Attempts, 1);
  }
  Sigs Degraded = {
      testutil::profileSignature(E.buildProfiles(), E.inputs()),
      testutil::treeSignature(E.tree()), testutil::inputsSignature(E.inputs())};
  // Seeds 8 (run 2) and 16 (run 4) were quarantined out.
  EXPECT_EQ(Degraded,
            serialSigs(*CP, SessionOptions(), seedRuns({0, 4, 12, 20})));
}

/// Every field of SessionOptions, rendered; if a knob is added without
/// flowing through both engines, the parity test below fails to compile
/// or fails to match.
std::string sessionOptionsSignature(const SessionOptions &SO) {
  std::ostringstream OS;
  OS << "equivalence=" << equivalenceStrategyName(SO.Profile.Equivalence)
     << " snapshots=" << snapshotModeName(SO.Profile.Snapshots)
     << " arraymeasure=" << static_cast<int>(SO.Profile.ArrayMeasure)
     << " sample=" << SO.Profile.SampleThreshold
     << " allmethods=" << SO.AllMethodsPlan << " fuel=" << SO.Run.Fuel
     << " maxframes=" << SO.Run.MaxFrames
     << " maxarray=" << SO.Run.MaxArrayLength
     << " maxheap=" << SO.Run.MaxHeapBytes
     << " deadline=" << SO.Run.RunDeadlineMs
     << " dispatch=" << vm::dispatchModeName(SO.Run.Dispatch)
     << " superinstructions=" << SO.Run.Superinstructions
     << " inlinecaches=" << SO.Run.InlineCaches << " runs=" << SO.Runs
     << " jobs=" << SO.Jobs << " seeds=";
  for (int64_t S : SO.Seeds)
    OS << S << ",";
  OS << " input=";
  for (int64_t V : SO.Input)
    OS << V << ",";
  OS << " policy=" << resilience::failurePolicyName(SO.Policy)
     << " maxattempts=" << SO.MaxAttempts << " faults=" << SO.Faults.str();
  return OS.str();
}

TEST(ParallelSweepTest, SerialAndSweepConsumeIdenticalOptions) {
  // The PR-3 byte-equality oracle only covers option plumbing if both
  // engines actually hold the same options: assert that one
  // SessionOptions value survives, field for field, through
  // ProfileSession, SweepEngine, and ProfileDriver.
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);
  SessionOptions SO;
  SO.Profile.Equivalence = EquivalenceStrategy::SameType;
  SO.Profile.Snapshots = SnapshotMode::Tracked;
  SO.Profile.SampleThreshold = 7;
  SO.AllMethodsPlan = true;
  SO.Run.Fuel = 123456789;
  SO.Run.MaxFrames = 99;
  SO.Run.MaxArrayLength = 1 << 20;
  SO.Run.MaxHeapBytes = 1 << 22;
  SO.Run.RunDeadlineMs = 5000;
  SO.Run.Dispatch = vm::DispatchMode::Switch;
  SO.Run.Superinstructions = false;
  SO.Run.InlineCaches = false;
  SO.Runs = 5;
  SO.Jobs = 3;
  SO.Seeds = {4, 8};
  SO.Input = {1, 2, 3};
  SO.Policy = resilience::FailurePolicy::Retry;
  SO.MaxAttempts = 5;
  std::string FaultErr;
  ASSERT_TRUE(resilience::FaultPlan::parse("heap-oom@run1:once", SO.Faults,
                                           FaultErr))
      << FaultErr;

  std::string Want = sessionOptionsSignature(SO);
  ProfileSession Serial(*CP, SO);
  EXPECT_EQ(Want, sessionOptionsSignature(Serial.options()));
  parallel::SweepEngine Engine(*CP, SO);
  EXPECT_EQ(Want, sessionOptionsSignature(Engine.options()));
  ProfileDriver Driver(*CP, SO);
  EXPECT_EQ(Want, sessionOptionsSignature(Driver.options()));
}

TEST(ParallelSweepTest, DriverMatchesAcrossJobCounts) {
  // The one-true-path front end: the same SessionOptions run plan must
  // produce identical profiles at every Jobs value.
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);
  auto driverSigs = [&](int Jobs) {
    SessionOptions SO;
    SO.Seeds = {4, 8, 12, 16};
    SO.Jobs = Jobs;
    ProfileDriver D(*CP, SO);
    for (const vm::RunResult &R : D.runAll("Main", "main"))
      EXPECT_TRUE(R.ok()) << R.TrapMessage;
    return Sigs{testutil::profileSignature(D.buildProfiles(), D.inputs()),
                testutil::treeSignature(D.tree()),
                testutil::inputsSignature(D.inputs())};
  };
  Sigs Serial = driverSigs(1);
  ASSERT_FALSE(Serial.Tree.empty());
  EXPECT_EQ(Serial, driverSigs(2));
  EXPECT_EQ(Serial, driverSigs(8));
  EXPECT_EQ(Serial, driverSigs(0)); // hardware concurrency
}

TEST(ParallelSweepTest, UnknownEntryTrapsEveryRun) {
  auto CP = testutil::compile(ioSumProgram());
  ASSERT_TRUE(CP);
  SessionOptions UnknownSO;
  UnknownSO.Jobs = 2;
  parallel::SweepEngine E(*CP, UnknownSO);
  parallel::SweepResult SR =
      E.sweepWithInputs("Main", "nope", std::vector<vm::IoChannels>(3));
  EXPECT_FALSE(SR.allOk());
  ASSERT_EQ(SR.Runs.size(), 3u);
  for (const vm::RunResult &R : SR.Runs)
    EXPECT_NE(R.TrapMessage.find("no static no-arg method"),
              std::string::npos);
}

} // namespace

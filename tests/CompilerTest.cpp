//===- tests/CompilerTest.cpp - Bytecode compiler unit tests --------------===//

#include "TestUtil.h"
#include "bytecode/Compiler.h"
#include "bytecode/Disassembler.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::bc;
using namespace algoprof::testutil;

namespace {

const MethodInfo &methodOf(const prof::CompiledProgram &CP,
                           const std::string &Cls,
                           const std::string &Name) {
  int32_t Id = CP.Mod->findMethodId(Cls, Name);
  EXPECT_GE(Id, 0) << Cls << "." << Name;
  return CP.Mod->Methods[static_cast<size_t>(Id)];
}

int countOp(const MethodInfo &M, Opcode Op) {
  int N = 0;
  for (const Instr &I : M.Code)
    if (I.Op == Op)
      ++N;
  return N;
}

TEST(Compiler, BranchTargetsInRange) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        int s = 0;
        for (int i = 0; i < 10; i++) {
          if (i % 3 == 0) { continue; }
          if (i == 8) { break; }
          s = s + i;
        }
        print(s);
      }
    }
  )");
  for (const MethodInfo &M : CP->Mod->Methods)
    for (const Instr &I : M.Code)
      if (isBranch(I.Op)) {
        EXPECT_GE(I.A, 0) << disassemble(*CP->Mod, M);
        EXPECT_LT(I.A, static_cast<int32_t>(M.Code.size()));
      }
}

TEST(Compiler, MethodsEndWithTerminator) {
  auto CP = compile(R"(
    class A {
      int f;
      int get() { return f; }
      void set(int v) { f = v; }
    }
    class Main { static void main() { } }
  )");
  for (const MethodInfo &M : CP->Mod->Methods) {
    ASSERT_FALSE(M.Code.empty());
    EXPECT_TRUE(isTerminator(M.Code.back().Op));
  }
}

TEST(Compiler, LoopMetadataMatchesSourceLoops) {
  auto CP = compile(R"(
    class Main {
      static void main() {
        for (int i = 0; i < 2; i++) {
          while (i > 5) { i--; }
        }
      }
    }
  )");
  const MethodInfo &M = methodOf(*CP, "Main", "main");
  ASSERT_EQ(M.Loops.size(), 2u);
  EXPECT_EQ(M.Loops[0].AstLoopId, 0);
  EXPECT_EQ(M.Loops[1].AstLoopId, 1);
  for (const LoopMeta &Meta : M.Loops) {
    EXPECT_GE(Meta.HeaderPc, 0);
    EXPECT_LT(Meta.HeaderPc, static_cast<int32_t>(M.Code.size()));
  }
}

TEST(Compiler, VtableOverrides) {
  auto CP = compile(R"(
    class A {
      int f() { return 1; }
      int g() { return 2; }
    }
    class B extends A {
      int g() { return 20; }
      int h() { return 30; }
    }
    class Main { static void main() { } }
  )");
  const ClassInfo &A = CP->Mod->Classes[static_cast<size_t>(
      CP->Mod->findClassId("A"))];
  const ClassInfo &B = CP->Mod->Classes[static_cast<size_t>(
      CP->Mod->findClassId("B"))];
  EXPECT_EQ(A.Vtable.size(), 2u);
  EXPECT_EQ(B.Vtable.size(), 3u);
  // Shared slots: f unchanged, g overridden.
  EXPECT_EQ(B.Vtable[0], A.Vtable[0]);
  EXPECT_NE(B.Vtable[1], A.Vtable[1]);
  // Slot assignments agree with MethodInfo.
  const MethodInfo &Bg = methodOf(*CP, "B", "g");
  EXPECT_EQ(B.Vtable[static_cast<size_t>(Bg.VtableSlot)], Bg.Id);
}

TEST(Compiler, FieldIdsStableAcrossSubclasses) {
  auto CP = compile(R"(
    class A { int x; }
    class B extends A { int y; }
    class Main {
      static int m(A a, B b) { return a.x + b.x + b.y; }
      static void main() { }
    }
  )");
  const MethodInfo &M = methodOf(*CP, "Main", "m");
  // Both x accesses use the same field id (declared in A).
  std::vector<int32_t> GetFieldIds;
  for (const Instr &I : M.Code)
    if (I.Op == Opcode::GetField)
      GetFieldIds.push_back(I.A);
  ASSERT_EQ(GetFieldIds.size(), 3u);
  EXPECT_EQ(GetFieldIds[0], GetFieldIds[1]);
  EXPECT_NE(GetFieldIds[0], GetFieldIds[2]);
}

TEST(Compiler, ShortCircuitEmitsBranches) {
  auto CP = compile(R"(
    class Main {
      static boolean m(boolean a, boolean b) { return a && b; }
      static void main() { }
    }
  )");
  const MethodInfo &M = methodOf(*CP, "Main", "m");
  EXPECT_GE(countOp(M, Opcode::IfFalse), 1);
  EXPECT_GE(countOp(M, Opcode::Dup), 1);
}

TEST(Compiler, StatementExpressionsLeaveStackBalanced) {
  // A call whose result is discarded must emit a Pop.
  auto CP = compile(R"(
    class Main {
      static int f() { return 7; }
      static void main() {
        f();
        print(f());
      }
    }
  )");
  const MethodInfo &M = methodOf(*CP, "Main", "main");
  EXPECT_GE(countOp(M, Opcode::Pop), 1);
}

TEST(Compiler, DisassemblerCoversAllMethods) {
  auto CP = compile(R"(
    class Node { Node next; Node(int v) { } }
    class Main {
      static void main() {
        Node n = new Node(1);
        n.next = null;
      }
    }
  )");
  std::string Text = disassemble(*CP->Mod);
  EXPECT_NE(Text.find("Main.main"), std::string::npos);
  EXPECT_NE(Text.find("Node.<init>"), std::string::npos);
  EXPECT_NE(Text.find("newobject Node"), std::string::npos);
  EXPECT_NE(Text.find("putfield Node.next"), std::string::npos);
}

TEST(Compiler, RefComparisonUsesRefOps) {
  auto CP = compile(R"(
    class P { }
    class Main {
      static boolean m(P a, P b) { return a == b; }
      static boolean n(int a, int b) { return a == b; }
      static void main() { }
    }
  )");
  EXPECT_EQ(countOp(methodOf(*CP, "Main", "m"), Opcode::RefEq), 1);
  EXPECT_EQ(countOp(methodOf(*CP, "Main", "n"), Opcode::CmpEq), 1);
}

TEST(Compiler, RejectsThreeSizedDimensions) {
  DiagnosticEngine Diags;
  auto P = parseMiniJ(R"(
    class Main {
      static void main() {
        int[][][] a = new int[2][2][2];
      }
    }
  )",
                      Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_TRUE(runSema(*P, Diags));
  auto Mod = compileProgram(*P, Diags);
  EXPECT_EQ(Mod, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Compiler, NumLocalsCoversTemps) {
  // Compound assignments through temps must grow NumLocals.
  auto CP = compile(R"(
    class P { int f; }
    class Main {
      static void main() {
        P p = new P();
        int v = (p.f = 3);
        p.f++;
        int[] a = new int[2];
        a[0]++;
        print(v + p.f + a[0]);
      }
    }
  )");
  const MethodInfo &M = methodOf(*CP, "Main", "main");
  for (const Instr &I : M.Code)
    if (I.Op == Opcode::Load || I.Op == Opcode::Store)
      EXPECT_LT(I.A, M.NumLocals);
}

} // namespace

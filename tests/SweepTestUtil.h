//===- tests/SweepTestUtil.h - Helpers for sweep/merge tests ----*- C++-*-===//
///
/// \file
/// Shared machinery for the parallel-sweep differential tests and the
/// merge property tests: run single profiled shards by hand, and render
/// profile pipelines into id-free signature strings that must match
/// byte-for-byte between a serial session and any sharded sweep.
///
//===----------------------------------------------------------------------===//

#ifndef ALGOPROF_TESTS_SWEEPTESTUTIL_H
#define ALGOPROF_TESTS_SWEEPTESTUTIL_H

#include "core/Session.h"
#include "parallel/SweepEngine.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace algoprof {
namespace testutil {

/// One hand-run profiled shard, as SweepEngine's workers produce them.
struct ShardRun {
  std::unique_ptr<prof::AlgoProfiler> Prof;
  vm::RunResult Result;
  int64_t NumObjects = 0;
};

inline ShardRun runShard(const prof::CompiledProgram &CP,
                         const prof::SessionOptions &Opts,
                         std::vector<int64_t> Input = {}) {
  ShardRun S;
  vm::Interpreter Interp(CP.Prep);
  S.Prof = std::make_unique<prof::AlgoProfiler>(CP.Prep, Opts.Profile);
  vm::InstrumentationPlan Plan =
      prof::makeInstrumentationPlan(CP, Opts.AllMethodsPlan);
  vm::IoChannels Io;
  Io.Input = std::move(Input);
  S.Result = Interp.run(CP.entryMethod("Main", "main"), S.Prof.get(),
                        Plan, Io, Opts.Run);
  S.NumObjects = Interp.heap().numObjects();
  return S;
}

inline std::string fmtDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

/// Renders everything the differential tests must see unchanged: labels,
/// per-input classifications, series points, fitted formulas, and the
/// per-measure fits. Input ids are deliberately absent — a sweep merge
/// may skip id numbers a serial session burned on short-lived inputs;
/// every observable fact about an input appears through its label.
/// \p SortPoints sorts each series (for run-order permutation tests,
/// where point order legitimately follows run order).
inline std::string
profileSignature(const std::vector<prof::AlgorithmProfile> &Profiles,
                 const prof::InputTable &T, bool SortPoints = false) {
  std::string Sig;
  for (const prof::AlgorithmProfile &AP : Profiles) {
    Sig += "algo: " + AP.Label + "\n";
    for (const prof::Classification::PerInput &PI : AP.Class.Inputs)
      Sig += "  class: " +
             std::string(prof::algorithmClassName(PI.Class)) + " of " +
             T.info(PI.InputId).Label + "\n";
    Sig += AP.Class.DoesInput ? "  does-input\n" : "";
    Sig += AP.Class.DoesOutput ? "  does-output\n" : "";
    for (const prof::AlgorithmProfile::InputSeries &S : AP.Series) {
      Sig += "  series " + S.Kind +
             (S.Interesting ? " interesting" : "") + "\n";
      std::vector<prof::SeriesPoint> Pts = S.Series;
      if (SortPoints)
        std::sort(Pts.begin(), Pts.end(),
                  [](const prof::SeriesPoint &A,
                     const prof::SeriesPoint &B) {
                    return A.X != B.X ? A.X < B.X : A.Y < B.Y;
                  });
      for (const prof::SeriesPoint &P : Pts)
        Sig += "    <" + fmtDouble(P.X) + ", " + fmtDouble(P.Y) + ">\n";
      if (S.Fit.Valid)
        Sig += "    fit " + S.Fit.formula() + "\n";
      for (const auto &[Kind, Fit] : S.MeasureFits)
        Sig += "    measure " + std::string(prof::costKindLabel(Kind)) +
               " " + Fit.formula() + "\n";
    }
  }
  return Sig;
}

/// Structural tree signature, id-free: node names in pre-order with
/// invocation counts, per-record steps, finalization flags, and parent
/// attribution indices. Serial vs sweep must agree exactly.
inline std::string treeSignature(const prof::RepetitionTree &T) {
  std::string Sig;
  T.forEach([&Sig](const prof::RepetitionNode &N) {
    Sig += N.Name + " depth=" + std::to_string(N.depth()) +
           " total=" + std::to_string(N.TotalInvocations) +
           " records=" + std::to_string(N.History.size()) + "\n";
    for (const prof::InvocationRecord &R : N.History)
      Sig += "  steps=" + std::to_string(R.Costs.steps()) +
             " folded=" + std::to_string(R.FoldedCosts.steps()) +
             " inputs=" + std::to_string(R.Inputs.size()) +
             " parent=" + std::to_string(R.ParentInvocation) +
             (R.Finalized ? " fin" : "") + "\n";
  });
  return Sig;
}

/// Live-input signature: label, member object ids, value sets, class
/// counts. Member ids are absolute (serial heap numbering), so this also
/// checks the sweep's ObjIdOffset translation.
inline std::string inputsSignature(const prof::InputTable &T) {
  std::string Sig;
  for (int32_t Id : T.liveInputs()) {
    const prof::InputInfo &Info = T.info(Id);
    Sig += Info.Label + (Info.IsArray ? " array" : "") +
           (Info.IsStream ? " stream" : "") + ":";
    std::vector<int64_t> Members(Info.Members.begin(),
                                 Info.Members.end());
    std::sort(Members.begin(), Members.end());
    for (int64_t M : Members)
      Sig += " m" + std::to_string(M);
    std::vector<int64_t> Values(Info.ValueSet.begin(),
                                Info.ValueSet.end());
    std::sort(Values.begin(), Values.end());
    for (int64_t V : Values)
      Sig += " v" + std::to_string(V);
    for (const auto &[ClassId, N] : Info.MemberClassCounts)
      Sig += " c" + std::to_string(ClassId) + "x" + std::to_string(N);
    Sig += " cap" + std::to_string(Info.MaxCapacitySeen) + "\n";
  }
  return Sig;
}

} // namespace testutil
} // namespace algoprof

#endif // ALGOPROF_TESTS_SWEEPTESTUTIL_H

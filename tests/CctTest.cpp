//===- tests/CctTest.cpp - Traditional CCT profiler -----------------------===//

#include "TestUtil.h"
#include "cct/CctProfiler.h"
#include "programs/Programs.h"
#include "report/TreePrinter.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::cct;
using namespace algoprof::testutil;

namespace {

struct CctRun {
  std::unique_ptr<prof::CompiledProgram> CP;
  std::unique_ptr<CctProfiler> Profiler;
  vm::RunResult Result;
};

CctRun runCct(const std::string &Src) {
  CctRun R;
  R.CP = compile(Src);
  if (!R.CP)
    return R;
  R.Profiler = std::make_unique<CctProfiler>(*R.CP->Mod);
  vm::Interpreter Interp(R.CP->Prep);
  vm::InstrumentationPlan Plan = vm::InstrumentationPlan::all(*R.CP->Mod);
  vm::IoChannels Io;
  R.Result = Interp.run(R.CP->entryMethod("Main", "main"),
                        R.Profiler.get(), Plan, Io);
  return R;
}

int64_t callsOf(const CctRun &R, const std::string &Cls,
                const std::string &Method) {
  int32_t Id = R.CP->Mod->findMethodId(Cls, Method);
  for (const auto &Row : R.Profiler->flatProfile())
    if (Row.MethodId == Id)
      return Row.Calls;
  return 0;
}

TEST(Cct, CallCountsByContext) {
  CctRun R = runCct(R"(
    class Main {
      static void leaf() { }
      static void mid() { leaf(); leaf(); }
      static void main() {
        mid();
        mid();
        mid();
        leaf();
      }
    }
  )");
  ASSERT_TRUE(R.Result.ok());
  EXPECT_EQ(callsOf(R, "Main", "mid"), 3);
  EXPECT_EQ(callsOf(R, "Main", "leaf"), 7);

  // Context separation: leaf appears under both main and mid.
  const CctNode &Root = R.Profiler->root();
  ASSERT_EQ(Root.Children.size(), 1u); // main.
  const CctNode &MainNode = *Root.Children[0];
  int32_t LeafId = R.CP->Mod->findMethodId("Main", "leaf");
  int32_t MidId = R.CP->Mod->findMethodId("Main", "mid");
  const CctNode *MidCtx = nullptr, *LeafUnderMain = nullptr;
  for (const auto &C : MainNode.Children) {
    if (C->MethodId == MidId)
      MidCtx = C.get();
    if (C->MethodId == LeafId)
      LeafUnderMain = C.get();
  }
  ASSERT_NE(MidCtx, nullptr);
  ASSERT_NE(LeafUnderMain, nullptr);
  EXPECT_EQ(LeafUnderMain->Calls, 1);
  ASSERT_EQ(MidCtx->Children.size(), 1u);
  EXPECT_EQ(MidCtx->Children[0]->Calls, 6);
}

TEST(Cct, InclusiveContainsExclusive) {
  CctRun R = runCct(R"(
    class Main {
      static int work(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) { s = s + i; }
        return s;
      }
      static void main() { print(work(50)); }
    }
  )");
  ASSERT_TRUE(R.Result.ok());
  for (const auto &Row : R.Profiler->flatProfile()) {
    EXPECT_GE(Row.Inclusive, Row.Exclusive);
    EXPECT_GE(Row.Exclusive, 0);
  }
}

TEST(Cct, RootInclusiveEqualsTotalInstructions) {
  CctRun R = runCct(R"(
    class Main {
      static int f(int x) { return x * 2; }
      static void main() { print(f(3) + f(4)); }
    }
  )");
  ASSERT_TRUE(R.Result.ok());
  EXPECT_EQ(R.Profiler->root().inclusiveCost(),
            static_cast<int64_t>(R.Result.InstrCount));
}

TEST(Cct, RunningExampleHotness) {
  // Paper Fig. 2: List.append and Node.<init> are the most frequently
  // called; List.sort is the hottest by exclusive cost.
  CctRun R = runCct(programs::insertionSortProgram(
      100, 10, 3, programs::InputOrder::Random));
  ASSERT_TRUE(R.Result.ok());

  auto Rows = R.Profiler->flatProfile();
  ASSERT_FALSE(Rows.empty());
  // Hottest exclusive = List.sort.
  int32_t SortId = R.CP->Mod->findMethodId("List", "sort");
  EXPECT_EQ(Rows[0].MethodId, SortId);

  // Most-called methods: List.append and the Node constructor.
  int64_t MaxCalls = 0;
  for (const auto &Row : Rows)
    MaxCalls = std::max(MaxCalls, Row.Calls);
  int64_t AppendCalls = callsOf(R, "List", "append");
  EXPECT_EQ(AppendCalls, MaxCalls);
  // The Node ctor is called exactly as often as append.
  int64_t CtorCalls = 0;
  for (const auto &Row : Rows) {
    const bc::MethodInfo &M =
        R.CP->Mod->Methods[static_cast<size_t>(Row.MethodId)];
    if (M.QualifiedName == "Node.<init>")
      CtorCalls = Row.Calls;
  }
  EXPECT_EQ(CtorCalls, AppendCalls);

  // Rendering works and mentions the hot methods.
  std::string Text = report::renderCct(*R.Profiler);
  EXPECT_NE(Text.find("List.sort"), std::string::npos);
  EXPECT_NE(Text.find("List.append"), std::string::npos);
}

TEST(Cct, RecursionBuildsChain) {
  // A CCT does not fold recursion (that is the repetition tree's job);
  // it is depth-limited only by the actual recursion.
  CctRun R = runCct(R"(
    class Main {
      static int down(int n) {
        if (n == 0) { return 0; }
        return down(n - 1);
      }
      static void main() { print(down(5)); }
    }
  )");
  ASSERT_TRUE(R.Result.ok());
  // Chain of 6 'down' contexts.
  const CctNode *Cur = &R.Profiler->root();
  int Depth = 0;
  int32_t DownId = R.CP->Mod->findMethodId("Main", "down");
  while (!Cur->Children.empty()) {
    Cur = Cur->Children[0].get();
    if (Cur->MethodId == DownId)
      ++Depth;
  }
  EXPECT_EQ(Depth, 6);
}

} // namespace

//===- tests/RobustnessTest.cpp - Front-end robustness fuzzing ------------===//
//
// Deterministic mutation fuzzing: the front end must never crash on
// malformed input — every mutation either compiles or produces
// diagnostics. Mutations of a known-good program: single-character
// deletions, truncations, and token-level swaps.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

/// Compiles without asserting success; the test is "no crash, and
/// failure implies diagnostics".
void compileLenient(const std::string &Src) {
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(Src, Diags);
  if (!CP)
    EXPECT_TRUE(Diags.hasErrors())
        << "compile failed without diagnostics";
}

std::string baseProgram() {
  return programs::insertionSortProgram(20, 10, 1,
                                        programs::InputOrder::Random);
}

TEST(Robustness, SingleCharacterDeletions) {
  std::string Base = baseProgram();
  // Every 7th deletion position keeps the test fast while covering the
  // whole program shape.
  for (size_t I = 0; I < Base.size(); I += 7) {
    std::string Mutated = Base;
    Mutated.erase(I, 1);
    compileLenient(Mutated);
  }
}

TEST(Robustness, Truncations) {
  std::string Base = baseProgram();
  for (size_t Len = 0; Len < Base.size(); Len += 23)
    compileLenient(Base.substr(0, Len));
}

TEST(Robustness, CharacterSubstitutions) {
  std::string Base = baseProgram();
  const char Replacements[] = {'{', '}', ';', '(', ')', '.', '<', '+'};
  uint64_t Seed = 0x9E3779B97F4A7C15ull;
  for (int I = 0; I < 200; ++I) {
    Seed = Seed * 6364136223846793005ull + 1442695040888963407ull;
    size_t Pos = static_cast<size_t>(Seed >> 33) % Base.size();
    char R = Replacements[(Seed >> 21) % sizeof(Replacements)];
    std::string Mutated = Base;
    Mutated[Pos] = R;
    compileLenient(Mutated);
  }
}

TEST(Robustness, LineDeletions) {
  std::string Base = baseProgram();
  std::vector<std::string> Lines;
  size_t Start = 0;
  for (size_t I = 0; I <= Base.size(); ++I) {
    if (I == Base.size() || Base[I] == '\n') {
      Lines.push_back(Base.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  for (size_t Drop = 0; Drop < Lines.size(); ++Drop) {
    std::string Mutated;
    for (size_t I = 0; I < Lines.size(); ++I) {
      if (I == Drop)
        continue;
      Mutated += Lines[I];
      Mutated += '\n';
    }
    compileLenient(Mutated);
  }
}

TEST(Robustness, DeeplyNestedExpressionsDoNotOverflow) {
  // Parenthesized nesting stresses the recursive-descent parser.
  std::string Expr(400, '(');
  Expr += "1";
  Expr += std::string(400, ')');
  compileLenient("class Main { static void main() { int x = " + Expr +
                 "; print(x); } }");
}

TEST(Robustness, DeeplyNestedBlocks) {
  std::string Body;
  for (int I = 0; I < 300; ++I)
    Body += "{ ";
  Body += "int x = 1; x = x + 1;";
  for (int I = 0; I < 300; ++I)
    Body += " }";
  compileLenient("class Main { static void main() { " + Body + " } }");
}

TEST(Robustness, ManyClassesAndMethods) {
  std::string Src;
  for (int C = 0; C < 60; ++C) {
    Src += "class C" + std::to_string(C) + " { ";
    for (int M = 0; M < 10; ++M)
      Src += "int m" + std::to_string(M) + "(int x) { return x + " +
             std::to_string(M) + "; } ";
    Src += "}\n";
  }
  Src += "class Main { static void main() { print(new C0().m0(1)); } }";
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(Src, Diags);
  ASSERT_TRUE(CP) << Diags.str();
  vm::IoChannels Io;
  EXPECT_TRUE(runPlain(*CP, "Main", "main", &Io).ok());
  EXPECT_EQ(Io.Output, (std::vector<int64_t>{1}));
}

TEST(Robustness, ValidMutantsStillProfile) {
  // Mutants that still compile must also survive profiling (the VM and
  // profiler must not assume anything the front end no longer checks).
  std::string Base = baseProgram();
  int Profiled = 0;
  for (size_t I = 0; I < Base.size() && Profiled < 10; I += 11) {
    std::string Mutated = Base;
    Mutated.erase(I, 1);
    DiagnosticEngine Diags;
    auto CP = compileMiniJ(Mutated, Diags);
    if (!CP)
      continue;
    ++Profiled;
    ProfileSession S(*CP);
    vm::RunResult R = S.run("Main", "main");
    // Any terminal status is fine; no crashes and a consistent tree.
    (void)R;
    S.tree().forEach([](const RepetitionNode &N) {
      for (const InvocationRecord &Rec : N.History)
        EXPECT_TRUE(Rec.Finalized);
    });
  }
  EXPECT_GT(Profiled, 0);
}

} // namespace

//===- tests/ObsTest.cpp - Self-observability registry --------------------===//
///
/// \file
/// Tests for the obs counter/timer registry and its two exporters: TLS
/// aggregation and thread retirement, span/timer semantics, the trace
/// event cap, pipeline instrumentation coverage, per-shard sweep
/// tracks, and byte-stable golden files for the Chrome trace-event and
/// Prometheus exports (deterministic via the injectable clock).
///
/// ctest label: obs. With -DALGOPROF_OBS=OFF the recording tests skip
/// themselves and only the always-compiled surface (names, deltaFrom,
/// exporters on an empty snapshot) is exercised.
///
//===----------------------------------------------------------------------===//

#include "GoldenUtil.h"
#include "TestUtil.h"
#include "obs/MetricsExport.h"
#include "obs/Obs.h"
#include "obs/TraceExport.h"
#include "parallel/SweepEngine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

constexpr const char *LoopProgram = R"(
class Main {
  static void main() {
    int n = 0;
    if (hasInput()) {
      n = readInt();
    }
    int i = 0;
    while (i < n) {
      i = i + 1;
    }
    print(i);
  }
}
)";

//===----------------------------------------------------------------------===//
// Always-compiled surface (names, delta arithmetic, exporters)
//===----------------------------------------------------------------------===//

TEST(ObsNames, StableSnakeCase) {
  EXPECT_STREQ(obs::phaseName(obs::Phase::VmRun), "vm_run");
  EXPECT_STREQ(obs::phaseName(obs::Phase::BuildProfiles), "build_profiles");
  EXPECT_STREQ(obs::phaseName(obs::Phase::ShardMerge), "shard_merge");
  EXPECT_STREQ(obs::counterName(obs::Counter::BytecodesExecuted),
               "bytecodes_executed");
  EXPECT_STREQ(obs::counterName(obs::Counter::TraceEventsDropped),
               "trace_events_dropped");
  // Every enumerator has a real name (the "?" fallback is unreachable).
  for (size_t I = 0; I < obs::NumPhases; ++I)
    EXPECT_STRNE(obs::phaseName(static_cast<obs::Phase>(I)), "?");
  for (size_t I = 0; I < obs::NumCounters; ++I)
    EXPECT_STRNE(obs::counterName(static_cast<obs::Counter>(I)), "?");
  for (size_t I = 0; I < obs::NumGauges; ++I)
    EXPECT_STRNE(obs::gaugeName(static_cast<obs::Gauge>(I)), "?");
}

TEST(ObsNames, DeltaFromSubtracts) {
  obs::Snapshot A, B;
  A.Counters[0] = 10;
  B.Counters[0] = 3;
  A.PhaseNs[2] = 500;
  B.PhaseNs[2] = 200;
  A.PhaseCalls[2] = 5;
  B.PhaseCalls[2] = 2;
  obs::Snapshot D = A.deltaFrom(B);
  EXPECT_EQ(D.Counters[0], 7u);
  EXPECT_EQ(D.PhaseNs[2], 300u);
  EXPECT_EQ(D.PhaseCalls[2], 3u);
}

TEST(ObsExport, EmptySnapshotIsValid) {
  obs::Snapshot S;
  std::string Trace = obs::chromeTraceJson(S);
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  std::string Prom = obs::prometheusText(S);
  // Zero-valued series are still present, one per enumerator.
  EXPECT_NE(Prom.find("algoprof_counter_total{counter=\"runs_completed\"} 0"),
            std::string::npos);
  EXPECT_NE(Prom.find("algoprof_phase_calls_total{phase=\"vm_run\"} 0"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Recording registry (skipped in ALGOPROF_OBS=OFF builds)
//===----------------------------------------------------------------------===//

#if ALGOPROF_OBS_ENABLED

std::atomic<uint64_t> FakeNow{0};
uint64_t fakeClock() { return FakeNow.load(std::memory_order_relaxed); }

/// Resets the registry around each test; the fake clock is opt-in via
/// useFakeClock().
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::enableTracing(false);
    obs::resetForTest();
  }
  void TearDown() override {
    obs::setClockForTest(nullptr);
    obs::enableTracing(false);
    obs::resetForTest();
  }
  void useFakeClock(uint64_t Start = 0) {
    FakeNow.store(Start, std::memory_order_relaxed);
    obs::setClockForTest(&fakeClock);
  }
  static uint64_t counter(const obs::Snapshot &S, obs::Counter C) {
    return S.Counters[static_cast<size_t>(C)];
  }
  static uint64_t phaseNs(const obs::Snapshot &S, obs::Phase P) {
    return S.PhaseNs[static_cast<size_t>(P)];
  }
  static uint64_t phaseCalls(const obs::Snapshot &S, obs::Phase P) {
    return S.PhaseCalls[static_cast<size_t>(P)];
  }
};

TEST_F(ObsTest, CountersAccumulate) {
  obs::addCount(obs::Counter::RunsCompleted);
  obs::addCount(obs::Counter::BytecodesExecuted, 41);
  obs::addCount(obs::Counter::BytecodesExecuted);
  obs::Snapshot S = obs::snapshot();
  EXPECT_EQ(counter(S, obs::Counter::RunsCompleted), 1u);
  EXPECT_EQ(counter(S, obs::Counter::BytecodesExecuted), 42u);
}

TEST_F(ObsTest, TimerAggregatesWithInjectedClock) {
  useFakeClock(100);
  {
    obs::ScopedTimer T(obs::Phase::Fit);
    FakeNow.store(350, std::memory_order_relaxed);
  }
  {
    obs::ScopedTimer T(obs::Phase::Fit);
    FakeNow.store(400, std::memory_order_relaxed);
  }
  obs::Snapshot S = obs::snapshot();
  EXPECT_EQ(phaseNs(S, obs::Phase::Fit), 300u);
  EXPECT_EQ(phaseCalls(S, obs::Phase::Fit), 2u);
  EXPECT_TRUE(S.Events.empty()); // Timers never trace.
}

TEST_F(ObsTest, SpansTraceOnlyWhenEnabled) {
  useFakeClock();
  { obs::ScopedSpan S1(obs::Phase::VmRun); } // Tracing off: no event.
  obs::enableTracing(true);
  {
    obs::ScopedSpan S2(obs::Phase::VmRun);
    FakeNow.store(2500, std::memory_order_relaxed);
  }
  { obs::ScopedTimer T(obs::Phase::VmRun); } // Timer: still no event.
  obs::Snapshot S = obs::snapshot();
  ASSERT_EQ(S.Events.size(), 1u);
  EXPECT_EQ(S.Events[0].P, obs::Phase::VmRun);
  EXPECT_EQ(S.Events[0].StartNs, 0u);
  EXPECT_EQ(S.Events[0].DurNs, 2500u);
  EXPECT_EQ(phaseCalls(S, obs::Phase::VmRun), 3u); // All three counted.
}

TEST_F(ObsTest, ScopedTrackRedirectsEvents) {
  useFakeClock();
  obs::enableTracing(true);
  obs::setTrackName(1000, "shard 0");
  {
    obs::ScopedTrack Track(1000);
    obs::ScopedSpan Span(obs::Phase::ShardRun);
    FakeNow.store(10, std::memory_order_relaxed);
  }
  { obs::ScopedSpan Span(obs::Phase::Report); } // Back on the thread lane.
  obs::Snapshot S = obs::snapshot();
  ASSERT_EQ(S.Events.size(), 2u);
  EXPECT_EQ(S.Events[1].Track, 1000);
  EXPECT_EQ(S.Events[1].P, obs::Phase::ShardRun);
  EXPECT_NE(S.Events[0].Track, 1000);
  EXPECT_EQ(S.TrackNames.at(1000), "shard 0");
}

TEST_F(ObsTest, RetiredThreadsFoldIntoSnapshot) {
  std::thread Worker([] {
    obs::addCount(obs::Counter::TreeNodes, 7);
    obs::ScopedTimer T(obs::Phase::Snapshot);
  });
  Worker.join();
  // The worker's state retired into the global pool before join()
  // returned; the snapshot from this thread must include it.
  obs::Snapshot S = obs::snapshot();
  EXPECT_EQ(counter(S, obs::Counter::TreeNodes), 7u);
  EXPECT_EQ(phaseCalls(S, obs::Phase::Snapshot), 1u);
  EXPECT_GE(S.Gauges[static_cast<size_t>(obs::Gauge::RetiredThreads)], 1u);
}

TEST_F(ObsTest, EventCapDropsAndCounts) {
  useFakeClock();
  obs::enableTracing(true);
  constexpr size_t Cap = 1 << 18;
  for (size_t I = 0; I < Cap + 5; ++I)
    obs::ScopedSpan Span(obs::Phase::Fit);
  obs::Snapshot S = obs::snapshot();
  EXPECT_EQ(S.Events.size(), Cap);
  EXPECT_EQ(S.Gauges[static_cast<size_t>(obs::Gauge::TraceEventsBuffered)],
            Cap);
  EXPECT_EQ(counter(S, obs::Counter::TraceEventsDropped), 5u);
  EXPECT_EQ(phaseCalls(S, obs::Phase::Fit), Cap + 5); // Aggregation uncapped.
}

TEST_F(ObsTest, PipelineIsInstrumented) {
  // One serial profiled run must touch every front-end phase, the VM,
  // and the volume counters the ISSUE promises.
  auto CP = testutil::compile(LoopProgram);
  ASSERT_TRUE(CP);
  SessionOptions SO;
  SO.Input = {6};
  ProfileDriver Driver(*CP, SO);
  std::vector<vm::RunResult> Results = Driver.runAll("Main", "main");
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_TRUE(Results[0].ok());
  (void)Driver.buildProfiles();

  obs::Snapshot S = obs::snapshot();
  for (obs::Phase P :
       {obs::Phase::Lex, obs::Phase::Parse, obs::Phase::Sema,
        obs::Phase::Compile, obs::Phase::Verify, obs::Phase::Prepare,
        obs::Phase::VmRun, obs::Phase::Grouping, obs::Phase::Classify,
        obs::Phase::BuildProfiles})
    EXPECT_GE(phaseCalls(S, P), 1u) << obs::phaseName(P);
  EXPECT_GT(counter(S, obs::Counter::BytecodesExecuted), 0u);
  EXPECT_EQ(counter(S, obs::Counter::RunsCompleted), 1u);
  EXPECT_GT(counter(S, obs::Counter::ListenerEvents), 0u);
}

TEST_F(ObsTest, SweepShardsGetNamedTracks) {
  obs::enableTracing(true);
  auto CP = testutil::compile(LoopProgram);
  ASSERT_TRUE(CP);
  SessionOptions SO;
  SO.Jobs = 2;
  SO.Seeds = {3, 5, 7};
  parallel::SweepEngine Engine(*CP, SO);
  parallel::SweepResult SR = Engine.sweep("Main", "main");
  ASSERT_TRUE(SR.allOk());

  obs::Snapshot S = obs::snapshot();
  // One named track per run, regardless of which worker executed it.
  std::vector<int32_t> ShardTracks;
  for (const auto &[Track, Name] : S.TrackNames)
    if (Name.rfind("shard ", 0) == 0)
      ShardTracks.push_back(Track);
  ASSERT_EQ(ShardTracks.size(), 3u);
  for (int32_t Track : ShardTracks) {
    bool HasRun = false;
    for (const obs::TraceEvent &E : S.Events)
      HasRun |= E.Track == Track && E.P == obs::Phase::ShardRun;
    EXPECT_TRUE(HasRun) << "no shard_run span on track " << Track;
  }
  EXPECT_EQ(counter(S, obs::Counter::ShardsMerged), 3u); // One per run.
  EXPECT_EQ(counter(S, obs::Counter::RunsCompleted), 3u);
}

//===----------------------------------------------------------------------===//
// Exporter golden files (byte-stable thanks to the injected clock)
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, ChromeTraceGolden) {
  useFakeClock();
  obs::enableTracing(true);
  obs::setTrackName(1000, "shard 0");
  obs::setTrackName(1001, "shard 1");
  {
    obs::ScopedTrack Track(1000);
    FakeNow.store(1000, std::memory_order_relaxed);
    obs::ScopedSpan Outer(obs::Phase::ShardRun);
    {
      FakeNow.store(1500, std::memory_order_relaxed);
      obs::ScopedSpan Inner(obs::Phase::VmRun);
      FakeNow.store(2750, std::memory_order_relaxed);
    }
    FakeNow.store(3000, std::memory_order_relaxed);
  }
  {
    obs::ScopedTrack Track(1001);
    obs::ScopedSpan Span(obs::Phase::ShardRun);
    FakeNow.store(1234567, std::memory_order_relaxed);
  }
  testutil::expectMatchesGolden(obs::chromeTraceJson(obs::snapshot()),
                                "trace_basic.json");
}

TEST_F(ObsTest, PrometheusGolden) {
  useFakeClock();
  obs::addCount(obs::Counter::BytecodesExecuted, 12345);
  obs::addCount(obs::Counter::RunsCompleted, 2);
  {
    obs::ScopedTimer T(obs::Phase::Fit);
    FakeNow.store(1500, std::memory_order_relaxed);
  }
  {
    obs::ScopedSpan S(obs::Phase::VmRun); // Untraced span still aggregates.
    FakeNow.store(2000000000ull, std::memory_order_relaxed);
  }
  testutil::expectMatchesGolden(obs::prometheusText(obs::snapshot()),
                                "metrics_basic.prom");
}

#endif // ALGOPROF_OBS_ENABLED

} // namespace

//===- tests/TestUtil.h - Shared test helpers -------------------*- C++-*-===//

#ifndef ALGOPROF_TESTS_TESTUTIL_H
#define ALGOPROF_TESTS_TESTUTIL_H

#include "core/Session.h"

#include <gtest/gtest.h>

namespace algoprof {
namespace testutil {

/// Compiles \p Src, failing the current test on diagnostics.
inline std::unique_ptr<prof::CompiledProgram>
compile(const std::string &Src) {
  DiagnosticEngine Diags;
  auto CP = prof::compileMiniJ(Src, Diags);
  EXPECT_TRUE(CP) << Diags.str();
  return CP;
}

struct RunOutcome {
  vm::RunResult Result;
  std::vector<int64_t> Output;
};

/// Compiles and runs Main.main unprofiled with optional input values.
inline RunOutcome run(const std::string &Src,
                      std::vector<int64_t> Input = {},
                      const std::string &Cls = "Main",
                      const std::string &Method = "main") {
  RunOutcome Out;
  auto CP = compile(Src);
  if (!CP)
    return Out;
  vm::IoChannels Io;
  Io.Input = std::move(Input);
  Out.Result = prof::runPlain(*CP, Cls, Method, &Io);
  Out.Output = std::move(Io.Output);
  return Out;
}

/// Runs and expects a clean finish; returns the output channel.
inline std::vector<int64_t> runOk(const std::string &Src,
                                  std::vector<int64_t> Input = {}) {
  RunOutcome Out = run(Src, std::move(Input));
  EXPECT_TRUE(Out.Result.ok()) << Out.Result.TrapMessage;
  return Out.Output;
}

/// Runs and expects a trap whose message contains \p Needle.
inline void runTraps(const std::string &Src, const std::string &Needle) {
  RunOutcome Out = run(Src);
  EXPECT_EQ(Out.Result.Status, vm::RunStatus::Trapped);
  EXPECT_NE(Out.Result.TrapMessage.find(Needle), std::string::npos)
      << "trap message was: " << Out.Result.TrapMessage;
}

} // namespace testutil
} // namespace algoprof

#endif // ALGOPROF_TESTS_TESTUTIL_H

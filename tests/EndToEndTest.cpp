//===- tests/EndToEndTest.cpp - The paper's headline results --------------===//
//
// Small-scale versions of every figure's claim; the bench binaries rerun
// them at paper scale.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::testutil;

namespace {

struct Profiled {
  std::unique_ptr<CompiledProgram> CP;
  std::unique_ptr<ProfileSession> Session;
  std::vector<AlgorithmProfile> Profiles;
};

Profiled profileProgram(const std::string &Src) {
  Profiled P;
  P.CP = compile(Src);
  if (!P.CP)
    return P;
  P.Session = std::make_unique<ProfileSession>(*P.CP);
  vm::RunResult R = P.Session->run("Main", "main");
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  P.Profiles = P.Session->buildProfiles();
  return P;
}

const AlgorithmProfile *byRoot(const Profiled &P, const std::string &Root) {
  for (const AlgorithmProfile &AP : P.Profiles)
    if (AP.Algo.Root->Name == Root)
      return &AP;
  return nullptr;
}

double fittedExponent(const AlgorithmProfile *AP) {
  EXPECT_NE(AP, nullptr);
  if (!AP)
    return -1;
  const AlgorithmProfile::InputSeries *S = AP->primarySeries();
  EXPECT_NE(S, nullptr) << "no interesting series for " << AP->Label;
  if (!S)
    return -1;
  EXPECT_TRUE(S->Fit.Valid);
  return S->Fit.growthExponent();
}

TEST(EndToEnd, Figure1aRandomInputIsQuadratic) {
  Profiled P = profileProgram(programs::insertionSortProgram(
      120, 10, 3, programs::InputOrder::Random));
  const AlgorithmProfile *Sort = byRoot(P, "List.sort loop#0");
  EXPECT_NEAR(fittedExponent(Sort), 2.0, 0.25);
  // The coefficient is near the paper's 0.25*size^2.
  const auto *S = Sort->primarySeries();
  if (S->Fit.Kind == fit::ModelKind::Quadratic)
    EXPECT_NEAR(S->Fit.Coefficient, 0.25, 0.08);
}

TEST(EndToEnd, Figure1bSortedInputIsLinear) {
  Profiled P = profileProgram(programs::insertionSortProgram(
      120, 10, 3, programs::InputOrder::Sorted));
  const AlgorithmProfile *Sort = byRoot(P, "List.sort loop#0");
  EXPECT_NEAR(fittedExponent(Sort), 1.0, 0.25);
}

TEST(EndToEnd, Figure1cReversedInputIsHalfNSquared) {
  Profiled P = profileProgram(programs::insertionSortProgram(
      120, 10, 3, programs::InputOrder::Reversed));
  const AlgorithmProfile *Sort = byRoot(P, "List.sort loop#0");
  const auto *S = Sort->primarySeries();
  ASSERT_NE(S, nullptr);
  EXPECT_NEAR(fittedExponent(Sort), 2.0, 0.15);
  // Reversed input: every element travels the whole way: ~0.5*n^2.
  double PredictedAt100 =
      S->Fit.Coefficient * std::pow(100.0, S->Fit.growthExponent());
  EXPECT_NEAR(PredictedAt100 / (0.5 * 100 * 100), 1.0, 0.25);
}

TEST(EndToEnd, Figure3ConstructionIsLinear) {
  Profiled P = profileProgram(programs::insertionSortProgram(
      120, 10, 3, programs::InputOrder::Random));
  const AlgorithmProfile *Build = byRoot(P, "Main.constructRandom loop#0");
  ASSERT_NE(Build, nullptr);
  EXPECT_NEAR(fittedExponent(Build), 1.0, 0.1);
  EXPECT_NE(Build->Label.find("Construction"), std::string::npos);
}

TEST(EndToEnd, Figure3SortIsModificationNotConstruction) {
  Profiled P = profileProgram(programs::insertionSortProgram(
      120, 10, 3, programs::InputOrder::Random));
  const AlgorithmProfile *Sort = byRoot(P, "List.sort loop#0");
  ASSERT_NE(Sort, nullptr);
  EXPECT_NE(Sort->Label.find("Modification of a Node-based recursive "
                             "structure"),
            std::string::npos);
}

TEST(EndToEnd, Figure5NaiveGrowthQuadraticDoublingLinear) {
  Profiled Naive =
      profileProgram(programs::arrayListProgram(false, 96, 8));
  Profiled Doubling =
      profileProgram(programs::arrayListProgram(true, 96, 8));
  const AlgorithmProfile *N = byRoot(Naive, "Main.testForSize loop#0");
  const AlgorithmProfile *D = byRoot(Doubling, "Main.testForSize loop#0");
  EXPECT_NEAR(fittedExponent(N), 2.0, 0.3);
  EXPECT_LE(fittedExponent(D), 1.3);
}

TEST(EndToEnd, MergeSortIsNLogN) {
  Profiled P = profileProgram(programs::mergeSortProgram(
      200, 20, 2, programs::InputOrder::Random));
  const AlgorithmProfile *Sort = byRoot(P, "MergeSort.sortList (recursion)");
  ASSERT_NE(Sort, nullptr);
  double Exp = fittedExponent(Sort);
  EXPECT_GT(Exp, 0.95);
  EXPECT_LT(Exp, 1.5);
}

TEST(EndToEnd, Section43FunctionalProfileMatches) {
  // Paradigm-agnosticism: the functional sort shows the same structure —
  // a linear construction and a quadratic sorting algorithm over a
  // recursive structure.
  Profiled P = profileProgram(programs::functionalSortProgram(
      100, 10, 3, programs::InputOrder::Random));
  const AlgorithmProfile *Build = byRoot(P, "Main.construct loop#0");
  ASSERT_NE(Build, nullptr);
  EXPECT_NEAR(fittedExponent(Build), 1.0, 0.1);
  EXPECT_NE(Build->Label.find("Construction"), std::string::npos);

  // The total sorting work (sort + nested insert, combined by hand as
  // the paper's intuitive algorithm) is quadratic in the list size.
  const RepetitionNode *SortN = nullptr, *InsertN = nullptr;
  P.Session->tree().forEach([&](const RepetitionNode &N) {
    if (N.Name == "FSort.sort (recursion)")
      SortN = &N;
    if (N.Name == "FSort.insert (recursion)")
      InsertN = &N;
  });
  ASSERT_NE(SortN, nullptr);
  ASSERT_NE(InsertN, nullptr);
  Algorithm Whole;
  Whole.Root = SortN;
  Whole.Nodes = {SortN, InsertN};
  auto Combined = combineInvocations(Whole, P.Session->inputs());
  // Pool over the original-list inputs (the ones sort reads).
  std::vector<int32_t> Ids;
  for (int32_t Id : SortN->touchedInputs())
    Ids.push_back(P.Session->inputs().canonical(Id));
  auto Series = extractPooledSeries(Combined, Ids);
  fit::FitResult F = fit::fitBest(Series);
  ASSERT_TRUE(F.Valid);
  EXPECT_NEAR(F.growthExponent(), 2.0, 0.3);
}

TEST(EndToEnd, ScalabilityPrediction) {
  // The paper's pitch: predict how cost scales to unseen sizes. Fit on
  // sizes <= 100, predict size 200, compare against a real run.
  Profiled Small = profileProgram(programs::insertionSortProgram(
      110, 10, 2, programs::InputOrder::Reversed));
  const AlgorithmProfile *Sort = byRoot(Small, "List.sort loop#0");
  const auto *S = Sort->primarySeries();
  ASSERT_NE(S, nullptr);
  double Predicted =
      S->Fit.Coefficient * std::pow(200.0, S->Fit.growthExponent());

  Profiled Big = profileProgram(programs::insertionSortProgram(
      201, 200, 1, programs::InputOrder::Reversed));
  const AlgorithmProfile *BigSort = byRoot(Big, "List.sort loop#0");
  ASSERT_NE(BigSort, nullptr);
  ASSERT_FALSE(BigSort->Invocations.empty());
  double Actual = 0;
  for (const CombinedInvocation &Inv : BigSort->Invocations)
    Actual = std::max(
        Actual, static_cast<double>(Inv.Costs.steps()));
  EXPECT_NEAR(Predicted / Actual, 1.0, 0.2);
}

TEST(EndToEnd, IoProgramEchoes) {
  auto CP = compile(programs::ioSumProgram());
  ASSERT_TRUE(CP);
  ProfileSession S(*CP);
  vm::IoChannels Io;
  Io.Input = {3, 4, 5};
  ASSERT_TRUE(S.run("Main", "main", Io).ok());
  EXPECT_EQ(Io.Output, (std::vector<int64_t>{3, 4, 5, 12}));
  // The loop's costs include input reads and output writes.
  bool SawIo = false;
  S.tree().forEach([&](const RepetitionNode &N) {
    for (const InvocationRecord &R : N.History)
      if (R.Costs.total(CostKind::InputRead) == 3 &&
          R.Costs.total(CostKind::OutputWrite) == 3)
        SawIo = true;
  });
  EXPECT_TRUE(SawIo);
}

} // namespace

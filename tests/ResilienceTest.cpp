//===- tests/ResilienceTest.cpp - Budgets, faults, degraded sweeps --------===//
///
/// \file
/// The resilience layer end to end (`ctest -L resilience`): run budgets
/// trip deterministically (same status, same instruction count, never
/// std::bad_alloc), FaultPlan specs parse and re-render canonically,
/// and degraded sweeps under the skip/retry policies quarantine exactly
/// the injected runs while the merged profile byte-matches a serial
/// session over the survivors — the ISSUE 5 acceptance sweep (16 runs,
/// 4 jobs) lives here.
///
//===----------------------------------------------------------------------===//

#include "SweepTestUtil.h"
#include "TestUtil.h"
#include "obs/Obs.h"
#include "programs/Programs.h"
#include "report/Reporter.h"
#include "resilience/Resilience.h"

#include <gtest/gtest.h>

using namespace algoprof;
using namespace algoprof::prof;
using namespace algoprof::programs;
using namespace algoprof::resilience;

namespace {

#if ALGOPROF_OBS_ENABLED
uint64_t counterValue(const obs::Snapshot &S, obs::Counter C) {
  return S.Counters[static_cast<size_t>(C)];
}
#endif

/// Allocates a 192-byte array (64-byte header + 8 slots) per iteration;
/// with any small MaxHeapBytes the run must end at the same allocation
/// on every machine.
const char *AllocLoopSrc = R"(
  class Main {
    static void main() {
      int i = 0;
      while (i < 100000) {
        int[] a = new int[8];
        a[0] = i;
        i = i + 1;
      }
    }
  }
)";

/// Pure compute, no allocation: only the deadline watchdog can end it
/// early.
const char *SpinLoopSrc = R"(
  class Main {
    static void main() {
      int i = 0;
      while (i < 1000000) {
        i = i + 1;
      }
    }
  }
)";

vm::RunResult runWith(const CompiledProgram &CP, const vm::RunOptions &RO) {
  vm::IoChannels Io;
  return runPlain(CP, "Main", "main", &Io, RO);
}

//===----------------------------------------------------------------------===//
// Deterministic byte accounting
//===----------------------------------------------------------------------===//

TEST(ResilienceBudget, ModelBytesAreDeterministic) {
  EXPECT_EQ(vm::Heap::bytesFor(0), vm::Heap::ObjectHeaderBytes);
  EXPECT_EQ(vm::Heap::bytesFor(8),
            vm::Heap::ObjectHeaderBytes + 8 * sizeof(vm::Value));
}

TEST(ResilienceBudget, HeapBudgetTrapsAtSameAllocationEveryRun) {
  auto CP = testutil::compile(AllocLoopSrc);
  ASSERT_TRUE(CP);
  vm::RunOptions RO;
  RO.MaxHeapBytes = 4096;
  vm::RunResult First = runWith(*CP, RO);
  EXPECT_EQ(First.Status, vm::RunStatus::BudgetExceeded);
  EXPECT_EQ(First.Budget, "heap_bytes");
  EXPECT_FALSE(First.Injected);
  EXPECT_GT(First.InstrCount, 0u);
  // Rerun on a fresh interpreter: identical trap point, byte for byte.
  for (int Rep = 0; Rep < 3; ++Rep) {
    vm::RunResult R = runWith(*CP, RO);
    EXPECT_EQ(R.Status, First.Status) << "rep=" << Rep;
    EXPECT_EQ(R.InstrCount, First.InstrCount) << "rep=" << Rep;
    EXPECT_EQ(R.TrapMessage, First.TrapMessage) << "rep=" << Rep;
  }
}

TEST(ResilienceBudget, GenerousHeapBudgetDoesNotFire) {
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);
  vm::RunOptions RO;
  RO.MaxHeapBytes = 1ULL << 30;
  vm::IoChannels Io;
  Io.Input = {12};
  vm::RunResult R = runPlain(*CP, "Main", "main", &Io, RO);
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_TRUE(R.Budget.empty());
}

uint64_t FakeNowMs = 0;
uint64_t fakeClock() { return ++FakeNowMs; }

TEST(ResilienceBudget, DeadlineTripsDeterministicallyUnderFakeClock) {
  auto CP = testutil::compile(SpinLoopSrc);
  ASSERT_TRUE(CP);
  vm::RunOptions RO;
  RO.RunDeadlineMs = 3;
  RO.ClockNowMs = fakeClock;
  FakeNowMs = 0;
  vm::RunResult First = runWith(*CP, RO);
  EXPECT_EQ(First.Status, vm::RunStatus::BudgetExceeded);
  EXPECT_EQ(First.Budget, "deadline");
  EXPECT_GT(First.InstrCount, 0u);
  // The injectable clock makes even the watchdog's trap point exact.
  for (int Rep = 0; Rep < 3; ++Rep) {
    FakeNowMs = 0;
    vm::RunResult R = runWith(*CP, RO);
    EXPECT_EQ(R.Status, First.Status) << "rep=" << Rep;
    EXPECT_EQ(R.InstrCount, First.InstrCount) << "rep=" << Rep;
    EXPECT_EQ(R.TrapMessage, First.TrapMessage) << "rep=" << Rep;
  }
}

TEST(ResilienceBudget, InjectedOomMarksResultInjected) {
  auto CP = testutil::compile(AllocLoopSrc);
  ASSERT_TRUE(CP);
  vm::RunOptions RO;
  RO.InjectHeapOomAtAlloc = 1;
  vm::RunResult R = runWith(*CP, RO);
  EXPECT_EQ(R.Status, vm::RunStatus::BudgetExceeded);
  EXPECT_EQ(R.Budget, "heap_bytes");
  EXPECT_TRUE(R.Injected);
}

//===----------------------------------------------------------------------===//
// FaultPlan parsing
//===----------------------------------------------------------------------===//

TEST(ResilienceFaultPlan, ParsesAndRendersCanonically) {
  FaultPlan P;
  std::string Err;
  ASSERT_TRUE(FaultPlan::parse(
      "heap-oom@run3,run-start-fail@run0:once,io-write-fail@metrics", P,
      Err))
      << Err;
  ASSERT_EQ(P.Faults.size(), 3u);
  EXPECT_TRUE(P.hasRunFaults());
  EXPECT_EQ(P.str(),
            "heap-oom@run3,run-start-fail@run0:once,io-write-fail@metrics");
  EXPECT_TRUE(P.fires(FaultSite::HeapOom, 3, 0));
  EXPECT_TRUE(P.fires(FaultSite::HeapOom, 3, 1)); // persistent
  EXPECT_FALSE(P.fires(FaultSite::HeapOom, 2, 0));
  EXPECT_TRUE(P.fires(FaultSite::RunStart, 0, 0));
  EXPECT_FALSE(P.fires(FaultSite::RunStart, 0, 1)); // :once
  EXPECT_TRUE(P.firesIoWrite("metrics"));
  EXPECT_FALSE(P.firesIoWrite("report"));
}

TEST(ResilienceFaultPlan, EmptySpecDisarms) {
  FaultPlan P;
  std::string Err;
  ASSERT_TRUE(FaultPlan::parse("", P, Err)) << Err;
  EXPECT_TRUE(P.empty());
  EXPECT_FALSE(P.hasRunFaults());
  EXPECT_EQ(P.str(), "");
}

TEST(ResilienceFaultPlan, RejectsMalformedSpecs) {
  for (const char *Bad :
       {"bogus@run1", "heap-oom@metrics", "heap-oom@run", "heap-oom@runx",
        "heap-oom@run-1", "io-write-fail@run3", "io-write-fail@stdout",
        "io-write-fail@report:once", "heap-oom", ",", "heap-oom@run1,"}) {
    FaultPlan P;
    std::string Err;
    EXPECT_FALSE(FaultPlan::parse(Bad, P, Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
}

// Io-write faults are session-scoped: each plan answers only for its
// own streams, and two plans coexist without any process-global state
// (the property the daemon's concurrent sessions rely on).
TEST(ResilienceFaultPlan, IoWriteFaultsAreSessionScoped) {
  FaultPlan A, B;
  std::string Err;
  ASSERT_TRUE(FaultPlan::parse("io-write-fail@trace", A, Err)) << Err;
  ASSERT_TRUE(FaultPlan::parse("io-write-fail@report", B, Err)) << Err;
  EXPECT_TRUE(A.firesIoWrite("trace"));
  EXPECT_FALSE(A.firesIoWrite("report"));
  EXPECT_FALSE(A.firesIoWrite("metrics"));
  EXPECT_TRUE(B.firesIoWrite("report"));
  EXPECT_FALSE(B.firesIoWrite("trace"));
  EXPECT_FALSE(FaultPlan().firesIoWrite("trace"));
}

//===----------------------------------------------------------------------===//
// Degraded sweeps through the one-true-path driver
//===----------------------------------------------------------------------===//

struct Sigs {
  std::string Profiles, Tree, Inputs;
  bool operator==(const Sigs &O) const {
    return Profiles == O.Profiles && Tree == O.Tree && Inputs == O.Inputs;
  }
};

Sigs driverSigs(const ProfileDriver &D) {
  return {testutil::profileSignature(D.buildProfiles(), D.inputs()),
          testutil::treeSignature(D.tree()),
          testutil::inputsSignature(D.inputs())};
}

SessionOptions faultedOptions(const std::string &Spec, FailurePolicy Policy,
                              std::vector<int64_t> Seeds, int Jobs,
                              int MaxAttempts = 3) {
  SessionOptions SO;
  SO.Jobs = Jobs;
  SO.Seeds = std::move(Seeds);
  SO.Policy = Policy;
  SO.MaxAttempts = MaxAttempts;
  std::string Err;
  EXPECT_TRUE(FaultPlan::parse(Spec, SO.Faults, Err)) << Err;
  return SO;
}

/// The acceptance sweep: 16 seeded runs on 4 workers, two injected
/// failures, skip policy. The sweep completes, quarantines exactly the
/// injected runs, surfaces them in failures()/degraded_runs/obs, and
/// the merged profile byte-matches serial over the surviving seeds.
TEST(ResilienceSweep, SixteenRunSkipSweepQuarantinesExactlyInjectedRuns) {
  obs::resetForTest();
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);
  std::vector<int64_t> Seeds;
  for (int64_t S = 2; S <= 32; S += 2)
    Seeds.push_back(S); // 16 seeds
  SessionOptions SO = faultedOptions("heap-oom@run3,run-start-fail@run11",
                                     FailurePolicy::Skip, Seeds, 4);
  ProfileDriver D(*CP, SO);
  std::vector<vm::RunResult> Rs = D.runAll("Main", "main");
  ASSERT_EQ(Rs.size(), 16u);
  for (size_t I = 0; I < Rs.size(); ++I) {
    if (I == 3 || I == 11)
      EXPECT_FALSE(Rs[I].ok()) << "run " << I;
    else
      EXPECT_TRUE(Rs[I].ok()) << "run " << I << ": " << Rs[I].TrapMessage;
  }
  EXPECT_EQ(Rs[3].Status, vm::RunStatus::BudgetExceeded);
  EXPECT_TRUE(Rs[3].Injected);

  EXPECT_TRUE(D.usable());
  ASSERT_EQ(D.failures().size(), 2u);
  const resilience::FailureInfo &F0 = D.failures()[0];
  const resilience::FailureInfo &F1 = D.failures()[1];
  EXPECT_EQ(F0.Run, 3);
  EXPECT_EQ(F0.Status, vm::RunStatus::BudgetExceeded);
  EXPECT_EQ(F0.Budget, "heap_bytes");
  EXPECT_EQ(F1.Run, 11);
  for (const resilience::FailureInfo &FI : D.failures()) {
    EXPECT_TRUE(FI.Quarantined);
    EXPECT_TRUE(FI.Injected);
    EXPECT_EQ(FI.Attempts, 1);
  }

  // Obs counters: one fault per injected run, both quarantined, one
  // budget trip (run-start aborts never reach the interpreter).
#if ALGOPROF_OBS_ENABLED
  obs::Snapshot S = obs::snapshot();
  EXPECT_EQ(counterValue(S, obs::Counter::FaultsInjected), 2u);
  EXPECT_EQ(counterValue(S, obs::Counter::RunsQuarantined), 2u);
  EXPECT_EQ(counterValue(S, obs::Counter::RunsBudgetExceeded), 1u);
  EXPECT_EQ(counterValue(S, obs::Counter::RunsRetried), 0u);
#endif

  // The JSON report names both degraded runs.
  report::ReportInput In;
  std::vector<AlgorithmProfile> Profiles = D.buildProfiles();
  In.Tree = &D.tree();
  In.Inputs = &D.inputs();
  In.Profiles = &Profiles;
  In.Degraded = &D.failures();
  std::string Doc = report::Registry::builtin().find("json")->render(In);
  EXPECT_NE(Doc.find("\"schema\": \"algoprof-profile/2\""),
            std::string::npos);
  EXPECT_NE(Doc.find("{\"run\": 3, \"status\": \"budget\""),
            std::string::npos);
  EXPECT_NE(Doc.find("{\"run\": 11, \"status\": \"trap\""),
            std::string::npos);

  // Byte-match: serial session over the surviving seeds only.
  std::vector<int64_t> Survivors;
  for (size_t I = 0; I < Seeds.size(); ++I)
    if (I != 3 && I != 11)
      Survivors.push_back(Seeds[I]);
  SessionOptions SerialSO;
  SerialSO.Seeds = Survivors;
  ProfileDriver Serial(*CP, SerialSO);
  for (const vm::RunResult &R : Serial.runAll("Main", "main"))
    ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(driverSigs(D), driverSigs(Serial));
}

TEST(ResilienceSweep, RetryRecoversTransientFault) {
  obs::resetForTest();
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);
  SessionOptions SO = faultedOptions("heap-oom@run1:once",
                                     FailurePolicy::Retry, {4, 8, 12}, 2,
                                     /*MaxAttempts=*/2);
  ProfileDriver D(*CP, SO);
  for (const vm::RunResult &R : D.runAll("Main", "main"))
    EXPECT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_TRUE(D.usable());
  EXPECT_TRUE(D.failures().empty());
#if ALGOPROF_OBS_ENABLED
  obs::Snapshot S = obs::snapshot();
  EXPECT_EQ(counterValue(S, obs::Counter::FaultsInjected), 1u);
  EXPECT_EQ(counterValue(S, obs::Counter::RunsRetried), 1u);
  EXPECT_EQ(counterValue(S, obs::Counter::RunsQuarantined), 0u);
#endif

  // Recovery is complete: the profile equals an unfaulted serial run.
  SessionOptions CleanSO;
  CleanSO.Seeds = {4, 8, 12};
  ProfileDriver Clean(*CP, CleanSO);
  for (const vm::RunResult &R : Clean.runAll("Main", "main"))
    ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(driverSigs(D), driverSigs(Clean));
}

TEST(ResilienceSweep, RetryExhaustsThenQuarantinesPersistentFault) {
  obs::resetForTest();
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);
  SessionOptions SO = faultedOptions("heap-oom@run1", FailurePolicy::Retry,
                                     {4, 8, 12}, 2, /*MaxAttempts=*/2);
  ProfileDriver D(*CP, SO);
  std::vector<vm::RunResult> Rs = D.runAll("Main", "main");
  ASSERT_EQ(Rs.size(), 3u);
  EXPECT_FALSE(Rs[1].ok());
  EXPECT_TRUE(D.usable()); // the failure is quarantined out
  ASSERT_EQ(D.failures().size(), 1u);
  EXPECT_EQ(D.failures()[0].Run, 1);
  EXPECT_EQ(D.failures()[0].Attempts, 2);
  EXPECT_TRUE(D.failures()[0].Quarantined);
#if ALGOPROF_OBS_ENABLED
  obs::Snapshot S = obs::snapshot();
  EXPECT_EQ(counterValue(S, obs::Counter::FaultsInjected), 2u); // both attempts
  EXPECT_EQ(counterValue(S, obs::Counter::RunsRetried), 1u);
  EXPECT_EQ(counterValue(S, obs::Counter::RunsQuarantined), 1u);
#endif
}

TEST(ResilienceSweep, FailPolicyReportsFailureWithoutQuarantine) {
  auto CP = testutil::compile(seededInsertionSortProgram(InputOrder::Random));
  ASSERT_TRUE(CP);
  SessionOptions SO = faultedOptions("heap-oom@run1", FailurePolicy::Fail,
                                     {4, 8, 12}, 1);
  ProfileDriver D(*CP, SO);
  std::vector<vm::RunResult> Rs = D.runAll("Main", "main");
  ASSERT_EQ(Rs.size(), 3u);
  EXPECT_FALSE(Rs[1].ok());
  // Fail never quarantines: the failure stands and the session is not
  // usable — the CLI turns this into a non-zero exit naming the run.
  EXPECT_FALSE(D.usable());
  ASSERT_EQ(D.failures().size(), 1u);
  EXPECT_FALSE(D.failures()[0].Quarantined);
  EXPECT_EQ(D.failures()[0].Budget, "heap_bytes");
}

TEST(ResilienceSweep, SerialFailuresAreRecordedButNeverQuarantined) {
  // Jobs == 1, Fail policy, no faults: the classic serial session. A
  // trapping run is recorded in failures() and makes the session
  // unusable, preserving the legacy all-or-nothing contract.
  auto CP = testutil::compile(R"(
    class Main {
      static void main() {
        int[] a = new int[2];
        a[5] = 1;
      }
    }
  )");
  ASSERT_TRUE(CP);
  SessionOptions SO;
  SO.Runs = 2;
  ProfileDriver D(*CP, SO);
  std::vector<vm::RunResult> Rs = D.runAll("Main", "main");
  ASSERT_EQ(Rs.size(), 2u);
  EXPECT_FALSE(D.usable());
  ASSERT_EQ(D.failures().size(), 2u);
  for (const resilience::FailureInfo &FI : D.failures())
    EXPECT_FALSE(FI.Quarantined);
}

} // namespace

//===- examples/io_profile.cpp - Input/Output algorithms ------------------===//
///
/// \file
/// Demonstrates the cost model's external-I/O operations (paper
/// Sec. 2.2: Input Reads / Output Writes) and the Input/Output
/// algorithm classifications (Sec. 2.8): a stream-processing loop that
/// consumes external input and produces external output is profiled as
/// an Input+Output algorithm even though it touches no data structure.
///
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "programs/Programs.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;

int main() {
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(programs::ioSumProgram(), Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  ProfileSession S(*CP);
  // Profile several runs with growing input streams — the paper's "set
  // of representative executions".
  for (int N = 8; N <= 64; N *= 2) {
    vm::IoChannels Io;
    for (int I = 1; I <= N; ++I)
      Io.Input.push_back(I);
    vm::RunResult R = S.run("Main", "main", Io);
    if (!R.ok()) {
      std::fprintf(stderr, "run failed: %s\n", R.TrapMessage.c_str());
      return 1;
    }
    std::printf("run with %2d input values -> %zu output values "
                "(last = %lld)\n",
                N, Io.Output.size(),
                static_cast<long long>(Io.Output.back()));
  }

  std::printf("\n");
  for (const AlgorithmProfile &AP : S.buildProfiles()) {
    std::printf("algorithm rooted at %s\n", AP.Algo.Root->Name.c_str());
    std::printf("  classification: %s\n", AP.Label.c_str());
    // The stream itself is the input (paper Sec. 2.3): its size is the
    // amount of external data, and the cost function follows.
    for (const AlgorithmProfile::InputSeries &Ser : AP.Series)
      if (Ser.Interesting)
        std::printf("  steps over '%s' size: %s\n", Ser.Kind.c_str(),
                    Ser.Fit.formula().c_str());
    // Show the per-run I/O costs from the repetition history.
    for (const CombinedInvocation &Inv : AP.Invocations)
      std::printf("  one invocation: %lld input reads, %lld output "
                  "writes, %lld steps\n",
                  static_cast<long long>(
                      Inv.Costs.total(CostKind::InputRead)),
                  static_cast<long long>(
                      Inv.Costs.total(CostKind::OutputWrite)),
                  static_cast<long long>(Inv.Costs.steps()));
  }
  return 0;
}

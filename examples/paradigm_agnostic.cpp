//===- examples/paradigm_agnostic.cpp - Same algorithm, any style ---------===//
///
/// \file
/// The paper's Section 4.3 demonstration as an example: an imperative,
/// iterative insertion sort over a mutable doubly linked list versus a
/// purely functional, recursive one over an immutable list. The source
/// looks entirely different; the algorithmic profiles agree — linear
/// construction, quadratic sorting over a Node-based structure.
///
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "programs/Programs.h"
#include "report/TreePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;

static void show(const char *Title, const std::string &Src) {
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(Src, Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    std::exit(1);
  }
  ProfileSession S(*CP);
  vm::RunResult R = S.run("Main", "main");
  if (!R.ok()) {
    std::fprintf(stderr, "run failed: %s\n", R.TrapMessage.c_str());
    std::exit(1);
  }
  std::printf("=== %s\n%s\n", Title,
              report::renderAnnotatedTree(S.tree(), S.buildProfiles())
                  .c_str());
}

int main() {
  std::printf("Paper Sec. 4.3: profiles are agnostic to programming "
              "paradigm\n\n");
  show("imperative / iterative / mutable",
       programs::insertionSortProgram(120, 10, 3,
                                      programs::InputOrder::Random));
  show("functional / recursive / immutable",
       programs::functionalSortProgram(120, 10, 3,
                                       programs::InputOrder::Random));
  std::printf("Both profiles contain a linear Construction and quadratic "
              "sorting work over a Node-based recursive structure. The "
              "visible (and honest) difference: the functional sort "
              "*constructs* its result rather than modifying in place, "
              "and splits across two recursion nodes — the paper calls "
              "its own result \"almost identical\" for the same "
              "reason.\n");
  return 0;
}

//===- examples/arraylist_growth.cpp - Finding an algorithmic bug ---------===//
///
/// \file
/// The paper's Section 4.2 scenario as a user workflow: a
/// dynamically-growing array-backed list feels slow; the algorithmic
/// profile shows *why* (the append algorithm is quadratic because grow()
/// extends capacity by one) and confirms the one-line fix (doubling)
/// makes it linear. A traditional profiler would only say "time is
/// spent in grow".
///
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "programs/Programs.h"
#include "report/TreePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;

static void analyze(const char *Title, bool Doubling) {
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(
      programs::arrayListProgram(Doubling, /*MaxSize=*/192, /*Step=*/16),
      Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    std::exit(1);
  }
  ProfileSession S(*CP);
  vm::RunResult R = S.run("Main", "main");
  if (!R.ok()) {
    std::fprintf(stderr, "run failed: %s\n", R.TrapMessage.c_str());
    std::exit(1);
  }

  std::printf("=== %s\n", Title);
  for (const AlgorithmProfile &AP : S.buildProfiles()) {
    if (AP.Algo.Root->Name != "Main.testForSize loop#0")
      continue;
    std::printf("  algorithm: append elements + grow when required "
                "(%zu repetition nodes grouped)\n",
                AP.Algo.Nodes.size());
    std::printf("  classified as: %s\n", AP.Label.c_str());
    if (const AlgorithmProfile::InputSeries *Ser = AP.primarySeries()) {
      std::printf("  inferred cost function: steps = %s (R^2 = %.4f)\n",
                  Ser->Fit.formula().c_str(), Ser->Fit.R2);
      std::printf("  verdict: %s\n",
                  Ser->Fit.growthExponent() > 1.5
                      ? "QUADRATIC append — fix the growth policy!"
                      : "linear append — amortized O(1) per element");
    }
  }
  std::printf("\n");
}

int main() {
  std::printf("Paper Sec. 4.2: uncovering an algorithmic inefficiency\n\n");
  analyze("naive: grow() extends the array by one element", false);
  analyze("ideal: grow() doubles the array", true);
  std::printf("Same code shape, one changed line — the cost function "
              "flips from ~0.5*n^2 to ~2*n.\n");
  return 0;
}

//===- examples/quickstart.cpp - AlgoProf in one page ---------------------===//
///
/// \file
/// The fastest tour of the library: compile the paper's running example
/// (insertion sort on a linked list, Listings 1+2), profile a sweep of
/// runs, and print the annotated repetition tree — the paper's Figure 3,
/// with automatically grouped algorithms, classifications, and fitted
/// cost functions.
///
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "programs/Programs.h"
#include "report/TreePrinter.h"

#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;

int main() {
  // 1. Compile the MiniJ program.
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(
      programs::insertionSortProgram(/*MaxSize=*/120, /*Step=*/10,
                                     /*Reps=*/3,
                                     programs::InputOrder::Random),
      Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // 2. Run it under the algorithmic profiler.
  ProfileSession S(*CP);
  vm::RunResult R = S.run("Main", "main");
  if (!R.ok()) {
    std::fprintf(stderr, "run failed: %s\n", R.TrapMessage.c_str());
    return 1;
  }
  std::printf("executed %llu bytecode instructions\n\n",
              static_cast<unsigned long long>(R.InstrCount));

  // 3. Group repetitions into algorithms, classify, fit cost functions.
  std::vector<AlgorithmProfile> Profiles = S.buildProfiles();

  // 4. Report (paper Fig. 3).
  std::printf("%s\n",
              report::renderAnnotatedTree(S.tree(), Profiles).c_str());
  return 0;
}

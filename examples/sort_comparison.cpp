//===- examples/sort_comparison.cpp - Comparing algorithm complexity ------===//
///
/// \file
/// The paper's core pitch applied to algorithm selection: profile two
/// sort implementations on identical inputs, let AlgoProf infer their
/// cost functions, and use those to predict scaling — insertion sort's
/// quadratic curve crosses merge sort's n*log n long before wall-clock
/// experiments would make it obvious.
///
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "programs/Programs.h"
#include "report/TablePrinter.h"

#include <cmath>
#include <cstdio>

using namespace algoprof;
using namespace algoprof::prof;

namespace {

fit::FitResult profileSort(const std::string &Src,
                           const std::string &SortRoot) {
  DiagnosticEngine Diags;
  auto CP = compileMiniJ(Src, Diags);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    std::exit(1);
  }
  ProfileSession S(*CP);
  vm::RunResult R = S.run("Main", "main");
  if (!R.ok()) {
    std::fprintf(stderr, "run failed: %s\n", R.TrapMessage.c_str());
    std::exit(1);
  }
  for (const AlgorithmProfile &AP : S.buildProfiles())
    if (AP.Algo.Root->Name == SortRoot)
      if (const AlgorithmProfile::InputSeries *Ser = AP.primarySeries())
        return Ser->Fit;
  std::fprintf(stderr, "no series found for %s\n", SortRoot.c_str());
  std::exit(1);
}

double predict(const fit::FitResult &F, double N) {
  return F.Coefficient * std::pow(N, F.growthExponent());
}

} // namespace

int main() {
  std::printf("Profiling insertion sort vs merge sort on random "
              "lists...\n\n");

  fit::FitResult Insertion = profileSort(
      programs::insertionSortProgram(200, 10, 2,
                                     programs::InputOrder::Random),
      "List.sort loop#0");
  fit::FitResult Merge = profileSort(
      programs::mergeSortProgram(200, 10, 2,
                                 programs::InputOrder::Random),
      "MergeSort.sortList (recursion)");

  std::printf("insertion sort: steps = %s\n",
              Insertion.formula().c_str());
  std::printf("merge sort:     steps = %s\n\n", Merge.formula().c_str());

  report::Table T({"list size", "insertion (predicted steps)",
                   "merge (predicted steps)", "winner"});
  for (double N : {16.0, 64.0, 256.0, 1024.0, 16384.0, 1048576.0}) {
    double I = predict(Insertion, N);
    double M = predict(Merge, N);
    char IBuf[32], MBuf[32];
    std::snprintf(IBuf, sizeof(IBuf), "%.3g", I);
    std::snprintf(MBuf, sizeof(MBuf), "%.3g", M);
    T.addRow({std::to_string(static_cast<long>(N)), IBuf, MBuf,
              I < M ? "insertion" : "merge"});
  }
  std::printf("%s", T.str().c_str());
  std::printf("\nThe profiles were inferred from runs of size <= 200; "
              "the predictions extrapolate to sizes never executed — "
              "the scalability insight a hotness profile cannot give.\n");
  return 0;
}
